// Frame-to-frame pedestrian tracking.
//
// The accelerator emits per-frame detections at 60 fps; a DAS consumes
// *tracks* — persistent object identities whose size growth encodes closing
// speed (and thus time-to-collision, the quantity the paper's Section-1
// stopping analysis needs). This is a deliberately simple greedy-IoU tracker
// in the spirit of what rides on top of such detectors: associate by IoU,
// smooth with an exponential filter, coast briefly through missed frames.
#pragma once

#include <optional>
#include <vector>

#include "src/detect/detection.hpp"

namespace pdet::detect {

struct Track {
  int id = 0;
  Detection box;            ///< smoothed current estimate
  int age = 0;              ///< frames since creation
  int hits = 0;             ///< frames with an associated detection
  int misses_in_a_row = 0;
  float last_score = 0.0f;
  /// Smoothed growth rate of box height per frame (fraction, e.g. 0.01 =
  /// +1%/frame). Positive growth = approaching.
  double height_growth_per_frame = 0.0;
  /// Smoothed box-center velocity in pixels per frame (EMA of the smoothed
  /// center's frame-to-frame delta; coasting tracks keep the last estimate).
  double vx_per_frame = 0.0;
  double vy_per_frame = 0.0;

  bool confirmed(int min_hits) const { return hits >= min_hits; }

  /// Extrapolate the track `frames_ahead` frames: center advances with the
  /// velocity estimate, height compounds the growth rate, width keeps the
  /// aspect ratio. This is the occupancy prediction the tile RoiScheduler
  /// consumes — deliberately the same constant-velocity model the DAS
  /// stopping analysis assumes.
  Detection predicted(int frames_ahead) const;
};

struct TrackerOptions {
  double match_iou = 0.3;     ///< minimum IoU to associate
  int max_misses = 3;         ///< coast this many frames, then drop
  int min_hits = 2;           ///< frames before a track is "confirmed"
  double position_alpha = 0.6;  ///< EMA weight of the new detection
  double growth_alpha = 0.3;    ///< EMA weight of the new growth sample
  double velocity_alpha = 0.5;  ///< EMA weight of the new velocity sample
  /// Extrapolation cap for predict_boxes(): predictions beyond this many
  /// frames ahead are clamped to max_coast, and tracks that have already
  /// coasted past it (misses_in_a_row > max_coast) are excluded entirely.
  /// The constant-velocity + compounding-growth model is only credible for
  /// a handful of frames; an uncapped prediction drifts a stale box across
  /// the frame — worse than admitting the track is gone.
  int max_coast = 8;
};

class Tracker {
 public:
  explicit Tracker(TrackerOptions options = {});

  /// Advance one frame: associate detections, update/create/drop tracks.
  /// Returns the live tracks after the update.
  const std::vector<Track>& update(const std::vector<Detection>& detections);

  const std::vector<Track>& tracks() const { return tracks_; }

  /// Fill `out` with Track::predicted(frames_ahead) for every confirmed
  /// track (options().min_hits). `out` is cleared first and reuses its
  /// capacity — the runtime calls this per frame on a warm vector.
  /// Extrapolation is bounded by options().max_coast: frames_ahead is
  /// clamped to it, and tracks already coasting beyond it are skipped.
  void predict_boxes(int frames_ahead, std::vector<Detection>& out) const;

  const TrackerOptions& options() const { return options_; }

  /// Estimated frames until the track's box height reaches `limit_height`
  /// px, from the current height and smoothed growth; nullopt if receding or
  /// static. With frame period T this is time-to-collision-ish.
  static std::optional<double> frames_to_height(const Track& track,
                                                int limit_height);

 private:
  TrackerOptions options_;
  std::vector<Track> tracks_;
  int next_id_ = 1;
};

}  // namespace pdet::detect
