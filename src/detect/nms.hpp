// Greedy non-maximum suppression.
//
// Sliding-window detectors fire in clusters around each true object; NMS
// keeps the highest-scoring box of each cluster. (The paper's hardware
// streams raw window scores off-chip and leaves grouping to the host; this
// is that host-side step.)
#pragma once

#include "src/detect/detection.hpp"

namespace pdet::detect {

/// Keep detections greedily by descending score, dropping any box whose IoU
/// with an already-kept box exceeds `iou_threshold`.
std::vector<Detection> nms(std::vector<Detection> detections,
                           double iou_threshold = 0.45);

}  // namespace pdet::detect
