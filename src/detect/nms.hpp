// Greedy non-maximum suppression.
//
// Sliding-window detectors fire in clusters around each true object; NMS
// keeps the highest-scoring box of each cluster. (The paper's hardware
// streams raw window scores off-chip and leaves grouping to the host; this
// is that host-side step.)
#pragma once

#include <span>

#include "src/detect/detection.hpp"

namespace pdet::detect {

/// The total order NMS processes candidates in: score descending, ties
/// broken by x, then y, then width, then height (all ascending). Scores tie
/// exactly whenever symmetric image content yields identical windows, so a
/// score-only sort would leave the survivor of a tied cluster up to
/// std::sort's whims; the full key makes suppression reproducible across
/// runs, thread counts, and standard libraries.
bool detection_order(const Detection& a, const Detection& b);

/// Keep detections greedily in `detection_order`, dropping any box whose IoU
/// with an already-kept box exceeds `iou_threshold`.
std::vector<Detection> nms(std::vector<Detection> detections,
                           double iou_threshold = 0.45);

/// `nms` into caller-owned storage: `scratch` receives the sorted candidate
/// list, `out` the kept boxes. Both are cleared and refilled; warm vectors
/// make the pass allocation-free (the DetectionEngine workspace path).
void nms_into(std::span<const Detection> detections, double iou_threshold,
              std::vector<Detection>& scratch, std::vector<Detection>& out);

}  // namespace pdet::detect
