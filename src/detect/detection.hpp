// Detection records and box geometry.
#pragma once

#include <vector>

namespace pdet::detect {

/// One detector response, in original-image pixel coordinates.
struct Detection {
  int x = 0;       ///< top-left
  int y = 0;
  int width = 0;
  int height = 0;
  float score = 0.0f;  ///< SVM decision value
  double scale = 1.0;  ///< pyramid level that produced it

  int x2() const { return x + width; }
  int y2() const { return y + height; }
  long long area() const {
    return static_cast<long long>(width) * static_cast<long long>(height);
  }
};

/// Intersection-over-union of two boxes; 0 when either is empty.
double iou(const Detection& a, const Detection& b);

}  // namespace pdet::detect
