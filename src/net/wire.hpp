// Binary wire protocol for the remote detection service (pdet::net::wire).
//
// Every message on the wire is one length-prefixed frame:
//
//   offset  size  field
//        0     4  magic        0x5044_4E31 ("1NDP" on the wire, LE)
//        4     1  protocol     kProtocolVersion; bumped on breaking change
//        5     1  type         MsgType
//        6     2  reserved     0 (alignment / future flags)
//        8     4  payload_len  bytes following the header
//       12     4  crc32        over header bytes [0,12) ++ payload
//       16   len  payload      ByteWriter/ByteReader-encoded fields (LE)
//
// The CRC covers the header prefix as well as the payload, so flipping any
// single bit of a frame — type byte included — is detected: a corrupted
// frame can be rejected, never misparsed as a different message. Frames are
// self-delimiting (kNeedMore until payload_len bytes have arrived), which is
// all a TCP byte stream needs for reassembly.
//
// Encoding appends one complete frame to a caller-owned vector (reused
// buffers encode with no steady-state allocation — the *_into convention).
// Decoding reads into a reused Message whose vectors/images keep their
// high-water capacity, and never trusts a declared length without bounding
// it first (kMaxPayloadBytes, kMaxFrameDim, per-string caps).
//
// Version negotiation: the client opens with Hello{protocol_version}; the
// server answers HelloAck carrying its own protocol version plus the model
// fingerprint (dimension + CRC of the canonical model bytes) and the stream
// id it assigned. A server that cannot speak the client's version replies
// Error{kVersionMismatch} and closes. Within one protocol version, unknown
// message types are a decode error (kUnknownType) — there are no optional
// extensions.
//
// v2 (breaking): Result grew the kError frame status and StatsReport grew
// the fault/health block (worker_faults..health_state) so remote clients
// can observe the server's self-healing state machine.
//
// v3 (breaking): the telemetry plane. Result grew a trailing FrameTrace
// block (server-side hop offsets in microseconds relative to service
// receive, plus per-pyramid-level engine times) so a client can reconstruct
// the frame's end-to-end timeline without sharing a clock with the server.
// New messages kTelemetryQuery / kTelemetryReport return the full metrics
// registry in Prometheus text exposition format plus frame-timeline
// percentiles from the server's flight-recorder window.
//
// v4 (breaking): StatsReport grew the scoring-backend block (which
// ScoringBackend served — scalar/batch/hwsim — plus batch/window counts and
// mean batch fill) so remote clients can see which backend scored their
// frames and how well cross-stream batching coalesced.
//
// v5 (breaking): input integrity (pdet::guard). Result grew the frame-
// quality block (input_quality / camera_state / quality_reasons) and the
// kDegradedInput frame status, FrameTrace grew the gate_us hop, and
// StatsReport grew the guard block (guard_unusable..cameras_quarantined) so
// a remote client can see per-frame integrity verdicts and per-camera
// health without scraping telemetry.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/detect/detection.hpp"
#include "src/imgproc/image.hpp"
#include "src/obs/timeline.hpp"
#include "src/runtime/stream.hpp"

namespace pdet::net::wire {

inline constexpr std::uint32_t kMagic = 0x50444E31u;  // "PDN1"
inline constexpr std::uint8_t kProtocolVersion = 5;
inline constexpr std::size_t kHeaderSize = 16;
/// Upper bound on a frame payload; a 4K-UHD float luminance plane is ~33 MiB,
/// anything larger is a corrupt or hostile length field.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;
/// Per-axis bound on submitted frame dimensions.
inline constexpr std::uint32_t kMaxFrameDim = 8192;
inline constexpr std::size_t kMaxNameLen = 256;
inline constexpr std::size_t kMaxErrorLen = 1024;
inline constexpr std::uint32_t kMaxDetections = 1u << 16;
/// Cap on the Prometheus text payload of a TelemetryReport. A registry of a
/// few hundred series renders to tens of KiB; 1 MiB headroom is generous.
inline constexpr std::size_t kMaxTelemetryTextLen = 1u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,        ///< client -> server, first message on a connection
  kHelloAck = 2,     ///< server -> client, handshake accept
  kSubmitFrame = 3,  ///< client -> server, one luminance frame
  kResult = 4,       ///< server -> client, one in-order frame outcome
  kStatsQuery = 5,   ///< client -> server, empty payload
  kStatsReport = 6,  ///< server -> client, runtime + net counters
  kError = 7,        ///< either direction; sender closes after a fatal one
  kShutdown = 8,     ///< client -> server: flush my results, then close
  kTelemetryQuery = 9,    ///< client -> server, empty payload (v3)
  kTelemetryReport = 10,  ///< server -> client, Prometheus text + timeline
};

enum class ErrorCode : std::uint32_t {
  kProtocol = 1,         ///< malformed frame / message out of order
  kVersionMismatch = 2,  ///< handshake protocol version not supported
  kBusy = 3,             ///< no free stream slot for a new connection
  kBadFrame = 4,         ///< frame dimensions rejected
  kShuttingDown = 5,     ///< server is draining; no new work accepted
  kInternal = 6,
};

struct Hello {
  std::uint32_t protocol_version = kProtocolVersion;
  std::string client_name;
};

struct HelloAck {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t model_dim = 0;  ///< descriptor length the server classifies
  std::uint32_t model_crc = 0;  ///< crc32 of svm::model_to_bytes output
  std::uint32_t stream_id = 0;  ///< runtime stream slot serving this client
  std::string server_name;
};

struct SubmitFrame {
  std::uint64_t tag = 0;  ///< opaque client-side id, echoed in Result
  imgproc::ImageF image;  ///< reused on decode (reset, not reallocated)
};

/// Server-side hop offsets for one frame (v3), microseconds relative to the
/// service-receive stamp. Clock domains do not cross the wire: the server
/// publishes durations, and the client grafts them onto its own
/// obs::timeline_now_ns() domain (see Client::last_timeline). 0 = hop not
/// reached (dropped/errored frames stop partway).
struct FrameTrace {
  std::uint32_t admit_us = 0;         ///< recv -> bounded-queue admit
  std::uint32_t schedule_us = 0;      ///< recv -> scheduler decision
  std::uint32_t engine_start_us = 0;  ///< recv -> detect::process entered
  std::uint32_t engine_end_us = 0;    ///< recv -> detect::process returned
  std::uint32_t deliver_us = 0;       ///< recv -> in-order delivery fired
  std::uint32_t send_us = 0;          ///< recv -> result encoded for wire
  std::uint32_t gate_us = 0;          ///< recv -> integrity gate verdict (v5)
  std::uint8_t level_count = 0;       ///< pyramid levels actually timed
  std::array<std::uint32_t, obs::kTimelineMaxLevels> level_us{};
};

/// Mirrors runtime::StreamResult; `tag` echoes the SubmitFrame that produced
/// it so a client can match results without trusting arrival order (though
/// per-stream delivery *is* in order: slot FIFO + TCP ordering).
struct Result {
  std::uint64_t sequence = 0;  ///< server-side stream sequence
  std::uint64_t tag = 0;
  runtime::FrameStatus status = runtime::FrameStatus::kOk;
  std::uint8_t degrade_level = 0;
  float queue_wait_ms = 0.0f;
  float service_ms = 0.0f;
  float total_ms = 0.0f;
  // Frame-quality block (v5; mirrors StreamResult). guard::FrameQuality,
  // guard::CameraState and the reason mask as raw ints; all 0 when the
  // server runs with the gate disabled.
  std::uint8_t input_quality = 0;
  std::uint8_t camera_state = 0;
  std::uint32_t quality_reasons = 0;
  FrameTrace trace;  ///< server-side timeline offsets (v3)
  std::vector<detect::Detection> detections;
};

struct StatsReport {
  // Runtime aggregate (subset of runtime::RuntimeStats).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t dropped_deadline = 0;
  double aggregate_fps = 0.0;
  // Net frontend accounting.
  std::uint64_t net_frames_received = 0;
  std::uint64_t net_results_sent = 0;
  std::uint64_t net_results_dropped = 0;  ///< shed to slow readers
  std::uint64_t net_decode_errors = 0;
  std::uint32_t active_connections = 0;
  // Fault containment / self-healing block (v2; mirrors RuntimeStats).
  std::uint64_t frames_error = 0;      ///< frames delivered as kError
  std::uint64_t worker_faults = 0;     ///< contained engine exceptions
  std::uint64_t worker_stalls = 0;     ///< watchdog-detected hung frames
  std::uint64_t workers_replaced = 0;  ///< replacement workers spawned
  std::uint64_t poison_frames = 0;     ///< frames rejected after max faults
  std::uint64_t net_frames_rejected = 0;  ///< bad SubmitFrames answered Error
  std::uint32_t health_state = 0;      ///< runtime::HealthState as integer
  // Scoring-backend block (v4; mirrors RuntimeStats).
  std::uint32_t score_backend = 0;     ///< score::BackendKind as integer
  std::uint64_t score_batches = 0;     ///< batches the backend scored
  std::uint64_t score_windows = 0;     ///< windows the backend scored
  float score_fill = 0.0f;             ///< mean batch fill [0, 1]
  // Input-integrity block (v5; mirrors RuntimeStats).
  std::uint64_t guard_unusable = 0;    ///< frames short-circuited by the gate
  std::uint64_t guard_soft = 0;        ///< degraded-but-usable verdicts
  std::uint64_t camera_quarantines = 0;  ///< healthy->quarantined transitions
  std::uint64_t camera_recoveries = 0;   ///< quarantined->suspect transitions
  std::uint32_t cameras_suspect = 0;     ///< streams currently suspect
  std::uint32_t cameras_quarantined = 0;  ///< streams currently quarantined
};

/// p50/p99 of one hop duration over the server's flight-recorder window.
struct TelemetryPercentiles {
  float p50_ms = 0.0f;
  float p99_ms = 0.0f;
};

/// The live telemetry plane (v3): everything a scrape or a --watch client
/// needs in one round trip. `prometheus` is the full obs registry rendered
/// in Prometheus text exposition format 0.0.4 (empty when the server runs
/// with metrics disabled); the percentiles come from the frame timelines
/// retained in the server's flight recorder.
struct TelemetryReport {
  double uptime_seconds = 0.0;
  std::uint32_t health_state = 0;      ///< runtime::HealthState as integer
  std::uint64_t timeline_frames = 0;   ///< timelines recorded since start
  std::uint32_t timeline_window = 0;   ///< frames the percentiles cover
  TelemetryPercentiles admit;   ///< service recv -> queue admit
  TelemetryPercentiles queue;   ///< queue admit -> schedule decision
  TelemetryPercentiles engine;  ///< engine start -> end
  TelemetryPercentiles total;   ///< first -> last recorded stamp
  std::string prometheus;       ///< metrics registry, text exposition
};

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Reused decode target: one instance per connection, buffers stay warm.
/// Only the member matching `type` is meaningful after a successful decode.
struct Message {
  MsgType type = MsgType::kError;
  Hello hello;
  HelloAck hello_ack;
  SubmitFrame frame;
  Result result;
  StatsReport stats;
  TelemetryReport telemetry;
  Error error;
};

enum class DecodeStatus {
  kOk,           ///< one message decoded; `consumed` bytes eaten
  kNeedMore,     ///< buffer holds a frame prefix; nothing consumed
  kBadMagic,     ///< stream out of sync / not our protocol
  kBadVersion,   ///< header protocol byte unsupported
  kBadLength,    ///< declared payload length out of bounds
  kBadCrc,       ///< frame failed its integrity check
  kBadPayload,   ///< CRC ok but fields malformed (internal inconsistency)
  kUnknownType,  ///< type byte not a known MsgType
};

const char* to_string(DecodeStatus status);
const char* to_string(ErrorCode code);

// Each encoder appends exactly one complete frame (header + payload) to
// `out`. `out` is not cleared: callers batch frames into one send buffer.
void encode_hello(const Hello& msg, std::vector<std::uint8_t>& out);
void encode_hello_ack(const HelloAck& msg, std::vector<std::uint8_t>& out);
void encode_submit_frame(const SubmitFrame& msg,
                         std::vector<std::uint8_t>& out);
void encode_result(const Result& msg, std::vector<std::uint8_t>& out);
void encode_stats_query(std::vector<std::uint8_t>& out);
void encode_stats_report(const StatsReport& msg,
                         std::vector<std::uint8_t>& out);
void encode_telemetry_query(std::vector<std::uint8_t>& out);
void encode_telemetry_report(const TelemetryReport& msg,
                             std::vector<std::uint8_t>& out);
void encode_error(const Error& msg, std::vector<std::uint8_t>& out);
void encode_shutdown(std::vector<std::uint8_t>& out);

/// Try to decode one message from the front of `data`. On kOk, `out` holds
/// the message and `consumed` the frame size; on kNeedMore nothing was
/// consumed. kBadPayload is special: the frame passed its CRC, so the
/// framing is trustworthy — `consumed` is set to the full frame size and
/// `out.type` to the frame's type, letting a server skip one semantically
/// invalid message (e.g. a SubmitFrame with impossible dimensions) and keep
/// the connection. On every other error `consumed` is 0 and the connection
/// should be torn down (a TCP stream cannot resynchronise after a framing
/// error).
DecodeStatus decode_message(std::span<const std::uint8_t> data, Message& out,
                            std::size_t& consumed);

}  // namespace pdet::net::wire
