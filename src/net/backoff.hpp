// Seeded-jitter exponential backoff (pdet::net).
//
// The reconnect schedule shared by net::Client and the fleet router's
// backend sessions. Plain capped exponential backoff has a fleet-scale
// failure mode: when one backend restarts, every session that lost it
// computes the *same* delays and redials in lockstep — a thundering herd
// that can knock the freshly restarted process straight back over. The fix
// is classic decorrelated jitter: attempt k sleeps a uniform draw from
// [delay * (1 - jitter), delay * (1 + jitter)] where delay is the capped
// exponential min(base * 2^k, max), with the draws coming from a *seeded*
// SplitMix64 stream. Distinct seeds decorrelate sessions; a fixed seed keeps
// every schedule bit-for-bit reproducible, which is what lets the chaos
// tests assert on reconnect behaviour at all.
#pragma once

#include <cstdint>

#include "src/util/rng.hpp"

namespace pdet::net {

struct BackoffPolicy {
  int attempts = 8;        ///< retries before giving up (0 disables)
  double base_ms = 50.0;   ///< first-attempt delay
  double max_ms = 2000.0;  ///< exponential cap (pre-jitter)
  /// Jitter half-width as a fraction of the capped exponential delay:
  /// attempt k sleeps uniform([d*(1-j), d*(1+j)]) with d = min(base*2^k, max).
  /// 0 reproduces the legacy deterministic lockstep schedule.
  double jitter = 0.5;
  /// Seeds the jitter stream. Two schedules with equal policies but distinct
  /// seeds draw decorrelated delays; equal seeds draw identical ones.
  std::uint64_t seed = 0x6a09e667f3bcc909ULL;
};

/// The delay (ms) before retry `attempt` (0-based). Pure function of
/// (policy, attempt, rng stream position): callers advance `jitter_rng` by
/// exactly one draw per call, so the k-th call of any schedule with the same
/// policy+seed yields the same delay.
double backoff_delay_ms(const BackoffPolicy& policy, int attempt,
                        util::Rng& jitter_rng);

/// Stateful walker over one policy: next_delay_ms() per failed attempt,
/// reset() after a success (the next outage starts from base again).
class BackoffSchedule {
 public:
  BackoffSchedule() : BackoffSchedule(BackoffPolicy{}) {}
  explicit BackoffSchedule(const BackoffPolicy& policy)
      : policy_(policy), rng_(policy.seed) {}

  /// True while retries remain (attempt < policy.attempts).
  bool can_retry() const { return attempt_ < policy_.attempts; }
  int attempt() const { return attempt_; }

  /// Delay before the next retry; advances the attempt counter.
  double next_delay_ms() { return backoff_delay_ms(policy_, attempt_++, rng_); }

  /// Back to attempt 0. The jitter stream keeps advancing (not re-seeded):
  /// successive outages draw fresh, still-reproducible delays.
  void reset() { attempt_ = 0; }

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  util::Rng rng_;
  int attempt_ = 0;
};

}  // namespace pdet::net
