// TCP frontend over the in-process serving runtime (pdet::net).
//
// DetectionService is the machine-boundary layer the deployment papers
// assume (an SoC detector node streaming frames/detections to the vehicle
// stack): it owns a runtime::DetectionServer and bridges N TCP client
// connections onto it through the wire protocol (net/wire):
//
//   accept ──► handshake (Hello/HelloAck: protocol + model fingerprint)
//     │                                        │ assign a stream slot
//     ▼                                        ▼
//   poll loop (one io thread)            runtime::DetectionServer
//     ├─ read:  decode SubmitFrame ───► submit(slot.stream, frame)
//     │                                        │ engine pool, scheduler,
//     │                                        │ in-order StreamContext
//     │          per-slot BoundedQueue ◄─── result callback (worker thread)
//     ├─ write: pop results ► encode ► conn write buffer ► send
//     └─ stats / shutdown / error frames
//
// Backpressure, both directions, is the PR 3 story extended to the wire:
// inbound overload lands in the runtime's bounded frame queue and
// degradation ladder (frames from all connections share it); outbound, a
// slow reader's results pile into a *bounded* per-slot queue with
// drop-oldest — the connection sheds stale results (counted in
// net.results_dropped) instead of buffering unboundedly, exactly how the
// frame queue treats a slow engine pool. The write buffer itself is capped:
// encoding pauses (results wait in the bounded queue) while a connection's
// unsent bytes exceed the watermark.
//
// Threading: one io thread runs the poll loop; runtime worker threads only
// touch their slot's bounded queue + wake pipe inside the result callback.
// stop() drains in-flight frames through the runtime, flushes what the
// clients will accept within a deadline, then tears down. Counters are
// aggregated service-locally so stats() is one consistent snapshot;
// publish_metrics() mirrors them into the (thread-safe) obs registry and
// may be called from any thread — a TelemetryQuery invokes it on the io
// thread so the Prometheus text a client reads is current.
//
// The telemetry plane (v3): the io thread stamps service_recv on every
// SubmitFrame and wire_send on every encoded Result, carrying the client's
// frame tag as trace context; a TelemetryQuery is answered inline from the
// metrics registry plus the runtime's flight-recorder timeline window.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/socket.hpp"
#include "src/net/wire.hpp"
#include "src/obs/metrics.hpp"
#include "src/runtime/bounded_queue.hpp"
#include "src/runtime/server.hpp"

namespace pdet::net {

struct ServiceOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with port()
  std::string name = "pdet";
  /// Stream slots, created up front (runtime streams are frozen at start()).
  /// Connections beyond this are refused with Error{kBusy}.
  int max_clients = 8;
  /// Per-slot outbound result queue depth; drop-oldest beyond it.
  std::size_t result_queue_capacity = 64;
  /// Unsent-byte watermark per connection: encoding pauses above it, so a
  /// stalled reader costs at most this buffer + the bounded result queue.
  std::size_t max_write_buffer = 4u << 20;
  /// stop(): how long to keep flushing delivered results to clients.
  double flush_timeout_ms = 2000.0;
  runtime::ServerOptions runtime;  ///< engine pool / queue / scheduler
};

/// Service-lifetime accounting (monotonic counters + a latency histogram
/// summary). Wire-level traffic on top of the embedded RuntimeStats.
struct ServiceStats {
  long long connections_accepted = 0;
  long long connections_closed = 0;
  long long connections_refused = 0;  ///< kBusy (no free slot)
  long long frames_received = 0;
  long long frames_rejected = 0;  ///< bad SubmitFrame answered with Error
  long long results_sent = 0;
  long long results_dropped = 0;  ///< shed on slow-reader queues
  long long decode_errors = 0;
  long long bytes_in = 0;
  long long bytes_out = 0;
  int active_connections = 0;
  obs::HistogramSummary request_ms;  ///< submit -> result encoded, per frame
  runtime::RuntimeStats runtime;
};

class DetectionService {
 public:
  DetectionService(svm::LinearModel model, ServiceOptions options);
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Bind, listen, start the runtime workers and the io thread. False (with
  /// a description in `*error`) when the address cannot be bound.
  bool start(std::string* error = nullptr);

  /// Port actually bound — the way to reach an ephemeral (port 0) service.
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful shutdown: stop accepting/reading, drain every in-flight frame
  /// through the runtime, flush results to clients (bounded by
  /// flush_timeout_ms), close, join. Idempotent; the destructor calls it.
  void stop();

  ServiceStats stats() const;

  /// Write net.* counters/histograms and the runtime.* set into the global
  /// obs registry. Delta-tracked and thread-safe (telemetry queries publish
  /// from the io thread; a periodic owner loop may run concurrently).
  void publish_metrics();

 private:
  struct Slot;
  struct Connection;

  void io_main();
  void handle_readable(Connection& conn);
  void handle_message(Connection& conn);
  void flush_slot_queues();
  void try_send(Connection& conn);
  void close_connection(std::size_t index);
  void send_error(Connection& conn, wire::ErrorCode code, const char* text);
  void build_stats_report(wire::StatsReport& out);
  void build_telemetry_report(wire::TelemetryReport& out);
  int acquire_slot();
  void wake();

  const ServiceOptions options_;
  runtime::DetectionServer runtime_;
  std::uint32_t model_dim_ = 0;
  std::uint32_t model_crc_ = 0;

  Socket listener_;
  std::uint16_t port_ = 0;
  int wake_read_ = -1;
  int wake_write_ = -1;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::thread io_thread_;
  bool started_ = false;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  // Counters: written by the io thread (and callbacks for drops), read by
  // stats(). Histogram under the same lock.
  mutable std::mutex stats_mutex_;
  ServiceStats counters_;
  obs::Histogram request_hist_;
  /// Delta-publishing state, own lock (io thread and owner may both call
  /// publish_metrics).
  std::mutex publish_mutex_;
  ServiceStats published_;  ///< last values written to the registry
};

}  // namespace pdet::net
