// Thin RAII layer over POSIX TCP sockets (pdet::net).
//
// Everything the service and client need, and nothing else: non-blocking
// listen/accept/connect with explicit timeouts, partial send/recv with a
// four-state outcome (progress, would-block, peer-closed, error), and
// poll()-based readiness waits. No exceptions — the wire layer must keep
// running through every transient network condition, so errors are values.
// SIGPIPE is suppressed per-send (MSG_NOSIGNAL); nothing here installs
// signal handlers.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace pdet::net {

/// Outcome of one send_some()/recv_some() call.
enum class IoStatus {
  kOk,          ///< >= 1 byte moved
  kWouldBlock,  ///< non-blocking socket has no space/data right now
  kClosed,      ///< peer gone: orderly shutdown, EPIPE (send) or ECONNRESET
  kError,       ///< anything else; errno captured by the caller if needed
};

/// Move-only owner of one socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Bind + listen on host:port (port 0 = ephemeral; read back with
  /// local_port()). SO_REUSEADDR is set so a restarted server can rebind
  /// its port immediately. Returns an invalid socket on failure, with a
  /// description in `*error` when provided.
  static Socket listen_tcp(const std::string& host, std::uint16_t port,
                           int backlog, std::string* error = nullptr);

  /// Connect to host:port with a bounded wait; the returned socket is
  /// non-blocking. Fails (invalid socket) on refusal or timeout.
  static Socket connect_tcp(const std::string& host, std::uint16_t port,
                            double timeout_ms, std::string* error = nullptr);

  /// Accept one pending connection (listener must be non-blocking);
  /// invalid socket when none is pending. The connection is non-blocking.
  Socket accept() const;

  bool set_nonblocking(bool enable) const;
  bool set_nodelay(bool enable) const;  ///< TCP_NODELAY: latency over batching
  /// Port actually bound (after listen_tcp with port 0); 0 on error.
  std::uint16_t local_port() const;

 private:
  int fd_ = -1;
};

/// One send(2); `sent` is set on kOk. Never raises SIGPIPE.
IoStatus send_some(int fd, std::span<const std::uint8_t> data,
                   std::size_t& sent);
/// One recv(2); `got` is set on kOk; kClosed on orderly EOF.
IoStatus recv_some(int fd, std::span<std::uint8_t> buf, std::size_t& got);

/// poll() one fd for readability/writability. timeout_ms < 0 waits forever.
bool wait_readable(int fd, double timeout_ms);
bool wait_writable(int fd, double timeout_ms);

/// True when the peer has closed (or reset) the connection. Probes with
/// MSG_PEEK so pending unread data is left in place; a live connection with
/// no data pending returns false. Needed because send(2) into a freshly
/// half-closed socket "succeeds" — a writer that never reads would not
/// notice a dead peer without this.
bool peer_closed(int fd);

}  // namespace pdet::net
