// Resilient client for the remote detection service (pdet::net).
//
// A camera node in the deployment picture: it owns one TCP connection to a
// DetectionService, submits luminance frames, and reads back in-order
// results. Resilience is the point — a detector node must survive the
// server restarting (fleet rollout, watchdog reboot) without operator
// intervention:
//
//   - connect() and every submit() that finds the link down walk a bounded
//     exponential-backoff schedule (base * 2^attempt, capped, finite
//     attempts) before giving up;
//   - after a reconnect the client re-handshakes, picks up whatever stream
//     slot the server assigns, and resets its delivery bookkeeping —
//     results for frames submitted on a previous connection are gone (the
//     server sheds them), which mirrors how a live camera treats missed
//     frames: the newest frame matters, the backlog does not.
//
// Delivery matches runtime::StreamContext sequencing: within one
// connection, results arrive in submit order (slot FIFO + TCP ordering),
// each echoing the client's tag, with server-side sequence numbers strictly
// increasing. A slow reader can be load-shed server-side (drop-oldest on
// its result queue), which surfaces here as a *forward* tag gap — counted
// in results_missed(), not an error. next_result() verifies ordering and
// treats only backward tags or non-increasing sequences as violations.
//
// Blocking with explicit timeouts throughout; single-threaded use (one
// camera loop). Encode/decode buffers are owned and reused — a steady
// submit/read cycle allocates nothing once buffers are warm.
//
// Frame timelines (v3): submit() stamps client_encode per tag; each Result
// carries server hop offsets relative to service receive (wire FrameTrace),
// and the client grafts them onto its own clock — the network one-way time
// is estimated as (round trip - server residency) / 2, the classic
// NTP-style midpoint. last_timeline() returns the reconstructed
// client -> engine -> client journey of the most recent result.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/net/backoff.hpp"
#include "src/net/socket.hpp"
#include "src/net/wire.hpp"
#include "src/obs/timeline.hpp"

namespace pdet::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "camera";
  double connect_timeout_ms = 2000.0;
  double io_timeout_ms = 5000.0;  ///< per send/recv readiness wait
  /// Reconnect schedule: attempt k sleeps a jittered min(base * 2^k, max)
  /// before retrying, for at most `attempts` tries (0 disables
  /// reconnection). See net::BackoffPolicy for the jitter semantics.
  int reconnect_attempts = 8;
  double reconnect_base_ms = 50.0;
  double reconnect_max_ms = 2000.0;
  /// Jitter half-width fraction of each delay (anti-thundering-herd; 0
  /// restores the legacy lockstep schedule).
  double reconnect_jitter = 0.5;
  /// Seeds the jitter stream. 0 = derive from `name`, so a fleet of
  /// distinctly named cameras decorrelates by default while any one
  /// client's schedule stays reproducible run to run.
  std::uint64_t reconnect_seed = 0;
};

/// The effective backoff policy for `options` (jitter seed derived from the
/// client name when reconnect_seed is 0). Exposed so the router's backend
/// sessions reuse the exact schedule the client walks.
BackoffPolicy client_backoff_policy(const ClientOptions& options);

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Establish (or re-establish) the connection + handshake, walking the
  /// backoff schedule. True when connected.
  bool connect();

  /// Best-effort graceful close: sends Shutdown, closes the socket.
  void disconnect();

  bool connected() const { return sock_.valid(); }

  /// Handshake results (valid while connected).
  const wire::HelloAck& server_info() const { return hello_ack_; }

  /// Submit one frame. Reconnects (with backoff) if the link is down or the
  /// send fails mid-way; false once the schedule is exhausted. The returned
  /// tag-to-come is submitted_count() - 1 — tags count frames on the
  /// *current* connection, matching result arrival order.
  bool submit(const imgproc::ImageF& frame);

  /// Block (up to timeout_ms) for the next Result frame. Skips/handles
  /// interleaved non-result messages. False on timeout, link failure or
  /// protocol violation (see last_error()); a failure other than timeout
  /// drops the connection so the next submit() reconnects.
  bool next_result(wire::Result& out, double timeout_ms);

  /// Round-trip a StatsQuery. Any Result frames that arrive ahead of the
  /// report are buffered and handed out by later next_result() calls, still
  /// in order.
  bool query_stats(wire::StatsReport& out, double timeout_ms);

  /// Round-trip a TelemetryQuery (v3): Prometheus metrics text + timeline
  /// percentiles. Same buffering contract as query_stats.
  bool query_telemetry(wire::TelemetryReport& out, double timeout_ms);

  /// End-to-end timeline of the most recent next_result() delivery, server
  /// hops grafted onto the client clock (see the header comment). False
  /// until a result for a frame submitted on this connection has arrived.
  bool last_timeline(obs::FrameTimeline& out) const;

  // Lifetime accounting (reset by reconnects where noted).
  long long submitted_on_connection() const { return submitted_conn_; }
  long long results_received() const { return results_received_; }
  long long reconnects() const { return reconnects_; }
  long long protocol_errors() const { return protocol_errors_; }
  /// Results the server shed for this connection (drop-oldest under
  /// backpressure), observed as forward tag gaps in the delivery stream.
  long long results_missed() const { return results_missed_; }
  /// True while received results respected submit order: tags never went
  /// backwards and server sequence numbers strictly increased (per
  /// connection). Forward tag gaps are shedding, not disorder — see
  /// results_missed().
  bool in_order() const { return in_order_; }
  const std::string& last_error() const { return last_error_; }

 private:
  bool connect_once(std::string* error);
  bool ensure_connected();
  bool send_all(const std::vector<std::uint8_t>& buf);
  /// Read until `msg_` holds one decoded message; false on timeout/error.
  bool read_message(double timeout_ms);
  /// Ordering/shedding bookkeeping for one received Result.
  void note_result(const wire::Result& r);
  /// Rebuild the frame's end-to-end timeline from the wire trace offsets.
  void graft_timeline(const wire::Result& r);
  void fail_link(const std::string& why);

  const ClientOptions options_;
  BackoffSchedule backoff_;
  Socket sock_;
  wire::HelloAck hello_ack_;

  std::vector<std::uint8_t> send_buf_;  ///< reused encode buffer
  std::vector<std::uint8_t> recv_buf_;  ///< unparsed inbound bytes
  std::size_t recv_pos_ = 0;
  wire::Message msg_;  ///< reused decode target
  wire::SubmitFrame frame_msg_;
  /// Results decoded while waiting for a StatsReport, delivered by later
  /// next_result() calls in arrival order.
  std::vector<wire::Result> buffered_results_;
  std::size_t buffered_pos_ = 0;

  /// (tag, client_encode_ns) for in-flight frames, submit order. Bounded:
  /// the oldest entry is dropped beyond kMaxEncodeStamps (its result then
  /// grafts without a client leg). Reset on reconnect, with the tags.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> encode_stamps_;
  obs::FrameTimeline last_timeline_;
  bool have_timeline_ = false;

  long long submitted_conn_ = 0;   ///< frames on the current connection
  long long results_received_ = 0;
  long long reconnects_ = 0;
  long long protocol_errors_ = 0;
  long long results_missed_ = 0;
  bool in_order_ = true;
  bool link_lost_ = false;  ///< an established connection died (see connect)
  bool have_last_sequence_ = false;
  std::uint64_t last_sequence_ = 0;
  std::uint64_t expected_tag_ = 0;  ///< next expected result tag
  std::string last_error_;
};

}  // namespace pdet::net
