#include "src/net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>

#include "src/fault/injector.hpp"

namespace pdet::net {
namespace {

void set_error(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
}

bool fill_addr(const std::string& host, std::uint16_t port,
               sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  return inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

int poll_timeout(double timeout_ms) {
  if (timeout_ms < 0.0) return -1;
  return static_cast<int>(std::ceil(timeout_ms));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::set_nonblocking(bool enable) const {
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return fcntl(fd_, F_SETFL, next) == 0;
}

bool Socket::set_nodelay(bool enable) const {
  const int v = enable ? 1 : 0;
  return setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof v) == 0;
}

std::uint16_t Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

Socket Socket::listen_tcp(const std::string& host, std::uint16_t port,
                          int backlog, std::string* error) {
  sockaddr_in addr{};
  if (!fill_addr(host, port, addr)) {
    if (error != nullptr) *error = "bad listen address: " + host;
    return Socket();
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    set_error(error, "socket");
    return Socket();
  }
  const int one = 1;
  (void)setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    set_error(error, "bind");
    return Socket();
  }
  if (::listen(sock.fd(), backlog) != 0) {
    set_error(error, "listen");
    return Socket();
  }
  if (!sock.set_nonblocking(true)) {
    set_error(error, "fcntl");
    return Socket();
  }
  return sock;
}

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port,
                           double timeout_ms, std::string* error) {
  sockaddr_in addr{};
  if (!fill_addr(host.empty() ? "127.0.0.1" : host, port, addr)) {
    if (error != nullptr) *error = "bad connect address: " + host;
    return Socket();
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    set_error(error, "socket");
    return Socket();
  }
  if (!sock.set_nonblocking(true)) {
    set_error(error, "fcntl");
    return Socket();
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      set_error(error, "connect");
      return Socket();
    }
    if (!wait_writable(sock.fd(), timeout_ms)) {
      if (error != nullptr) *error = "connect: timed out";
      return Socket();
    }
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      if (error != nullptr) {
        *error = std::string("connect: ") + std::strerror(soerr);
      }
      return Socket();
    }
  }
  (void)sock.set_nodelay(true);
  return sock;
}

Socket Socket::accept() const {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Socket();
  Socket conn(fd);
  (void)conn.set_nonblocking(true);
  (void)conn.set_nodelay(true);
  return conn;
}

IoStatus send_some(int fd, std::span<const std::uint8_t> data,
                   std::size_t& sent) {
  ssize_t n;
  // Chaos hooks (fault::armed() is one relaxed load when off). Faults are
  // injected *upstream* of the errno mapping below — EINTR/reset plans set n
  // and errno exactly as a failing send(2) would, so the production mapping
  // branches genuinely execute; short writes truncate the request so the
  // caller's resume-from-offset loop runs.
  if (fault::armed()) {
    const fault::Decision latency = fault::check("net.send.latency");
    if (latency.fire) fault::sleep_ms(latency.param != 0 ? latency.param : 1);
    if (fault::check("net.send.eintr").fire) {
      n = -1;
      errno = EINTR;
    } else if (fault::check("net.send.reset").fire) {
      n = -1;
      errno = ECONNRESET;
    } else {
      std::size_t len = data.size();
      const fault::Decision cut = fault::check("net.send.short");
      if (cut.fire && len > 1) {
        const std::size_t keep = cut.param != 0 ? cut.param : 1;
        if (keep < len) len = keep;
      }
      n = ::send(fd, data.data(), len, MSG_NOSIGNAL);
    }
  } else {
    n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
  }
  if (n > 0) {
    sent = static_cast<std::size_t>(n);
    return IoStatus::kOk;
  }
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    return IoStatus::kWouldBlock;
  }
  if (n < 0 && errno == EINTR) return IoStatus::kWouldBlock;
  if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return IoStatus::kClosed;
  return IoStatus::kError;
}

IoStatus recv_some(int fd, std::span<std::uint8_t> buf, std::size_t& got) {
  ssize_t n;
  if (fault::armed()) {
    const fault::Decision latency = fault::check("net.recv.latency");
    if (latency.fire) fault::sleep_ms(latency.param != 0 ? latency.param : 1);
    if (fault::check("net.recv.eintr").fire) {
      n = -1;
      errno = EINTR;
    } else if (fault::check("net.recv.reset").fire) {
      n = -1;
      errno = ECONNRESET;
    } else {
      std::size_t len = buf.size();
      const fault::Decision cut = fault::check("net.recv.short");
      if (cut.fire && len > 1) {
        const std::size_t keep = cut.param != 0 ? cut.param : 1;
        if (keep < len) len = keep;
      }
      n = ::recv(fd, buf.data(), len, 0);
      if (n > 0) {
        const fault::Decision corrupt = fault::check("net.recv.corrupt");
        if (corrupt.fire) {
          buf[corrupt.param % static_cast<std::size_t>(n)] ^= 0x01;
        }
      }
    }
  } else {
    n = ::recv(fd, buf.data(), buf.size(), 0);
  }
  if (n > 0) {
    got = static_cast<std::size_t>(n);
    return IoStatus::kOk;
  }
  if (n == 0) return IoStatus::kClosed;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return IoStatus::kWouldBlock;
  }
  if (errno == ECONNRESET) return IoStatus::kClosed;
  return IoStatus::kError;
}

bool wait_readable(int fd, double timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  return ::poll(&p, 1, poll_timeout(timeout_ms)) > 0 &&
         (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

bool wait_writable(int fd, double timeout_ms) {
  pollfd p{fd, POLLOUT, 0};
  return ::poll(&p, 1, poll_timeout(timeout_ms)) > 0 &&
         (p.revents & (POLLOUT | POLLHUP | POLLERR)) != 0;
}

bool peer_closed(int fd) {
  std::uint8_t probe = 0;
  const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n > 0) return false;  // data pending: alive (and left unconsumed)
  if (n == 0) return true;  // orderly EOF
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

}  // namespace pdet::net
