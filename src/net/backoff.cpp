#include "src/net/backoff.hpp"

#include <algorithm>

namespace pdet::net {

double backoff_delay_ms(const BackoffPolicy& policy, int attempt,
                        util::Rng& jitter_rng) {
  const double exponential =
      policy.base_ms *
      static_cast<double>(1ULL << std::min(std::max(attempt, 0), 40));
  const double capped = std::min(exponential, policy.max_ms);
  // Always consume exactly one draw, jitter or not, so the stream position
  // stays a pure function of the call count (the util::Rng discipline).
  const double u = jitter_rng.uniform();
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double scaled = capped * (1.0 - jitter + 2.0 * jitter * u);
  return std::max(scaled, 0.0);
}

}  // namespace pdet::net
