#include "src/net/service.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/obs/timeline.hpp"
#include "src/svm/model_io.hpp"
#include "src/util/assert.hpp"
#include "src/util/stats.hpp"

namespace pdet::net {
namespace {

using Clock = std::chrono::steady_clock;

std::vector<double> latency_bounds() {
  const std::span<const double> bounds = obs::default_latency_bounds_ms();
  return {bounds.begin(), bounds.end()};
}

/// Ring of pending frame tags for one slot: tags enter at submit and leave,
/// in the same order, when the runtime delivers — per-stream deliveries are
/// sequence-ordered, so FIFO alignment is exact. There is no hard in-flight
/// ceiling: StreamContext buffers out-of-order completions (one slow frame
/// lets arbitrarily many successors finish and wait, holding their tags
/// without occupying a queue slot or worker), so push() grows the ring on
/// overflow instead of asserting — the initial capacity only sizes the
/// common case so steady state stays allocation-free.
class TagRing {
 public:
  void reset(std::size_t capacity) {
    ring_.assign(std::max<std::size_t>(capacity, 1), 0);
    head_ = count_ = 0;
  }
  void push(std::uint64_t tag) {
    if (count_ == ring_.size()) grow();
    ring_[(head_ + count_) % ring_.size()] = tag;
    ++count_;
  }
  std::uint64_t pop() {
    PDET_ASSERT(count_ > 0);
    const std::uint64_t tag = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return tag;
  }
  std::size_t size() const { return count_; }

 private:
  void grow() {
    std::vector<std::uint64_t> bigger(ring_.size() * 2, 0);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = ring_[(head_ + i) % ring_.size()];
    }
    ring_.swap(bigger);
    head_ = 0;
  }

  std::vector<std::uint64_t> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace

/// One result queued for a client, with the echoed client tag. swap() keeps
/// BoundedQueue's buffer-recycling contract allocation-free.
struct SlotResult {
  std::uint64_t tag = 0;
  runtime::StreamResult res;

  friend void swap(SlotResult& a, SlotResult& b) {
    std::swap(a.tag, b.tag);
    std::swap(a.res, b.res);
  }
};

/// One pre-registered runtime stream and its outbound plumbing. A slot
/// outlives connections: it is acquired at handshake, released at close,
/// and only re-acquired once every in-flight frame from the previous owner
/// has delivered (outstanding == 0) so results can never cross connections.
struct DetectionService::Slot {
  explicit Slot(std::size_t queue_capacity)
      : results(queue_capacity, runtime::BackpressurePolicy::kDropOldest) {}

  int stream_id = -1;
  std::atomic<bool> attached{false};
  std::atomic<long long> outstanding{0};
  runtime::BoundedQueue<SlotResult> results;

  // Callback-side state. The stream's delivery lock serializes callbacks;
  // the mutex additionally orders them against handshake-time reset.
  std::mutex mutex;
  TagRing tags;
  SlotResult scratch;  ///< staging copy, capacity reused
  SlotResult evicted;  ///< drop-oldest out-param, capacity reused
};

struct DetectionService::Connection {
  Socket sock;
  int slot = -1;  ///< index into slots_, -1 before handshake
  bool closing = false;   ///< fatal: flush wbuf, then close
  bool draining = false;  ///< kShutdown: close once results are flushed
  bool dead = false;

  std::vector<std::uint8_t> rbuf;
  std::size_t rpos = 0;  ///< consumed prefix of rbuf
  std::vector<std::uint8_t> wbuf;
  std::size_t wpos = 0;  ///< sent prefix of wbuf

  wire::Message msg;          ///< reused decode target
  wire::Result out_result;    ///< reused encode staging
  wire::StatsReport out_stats;
  wire::TelemetryReport out_telemetry;
  SlotResult popped;  ///< reused pop target

  std::size_t unsent() const { return wbuf.size() - wpos; }
};

DetectionService::DetectionService(svm::LinearModel model,
                                   ServiceOptions options)
    : options_(std::move(options)),
      runtime_(model, options_.runtime),
      request_hist_(latency_bounds()) {
  PDET_REQUIRE(options_.max_clients >= 1);
  PDET_REQUIRE(options_.result_queue_capacity >= 1);
  model_dim_ = static_cast<std::uint32_t>(model.dimension());
  model_crc_ = svm::model_fingerprint(model);
  // Initial per-stream tag capacity: every queued frame + one per worker in
  // service + the frame inside submit() itself. Out-of-order completions
  // buffered inside the runtime can exceed this; the ring grows then.
  const std::size_t tag_capacity = options_.runtime.queue_capacity +
                                   static_cast<std::size_t>(
                                       options_.runtime.workers) +
                                   2;
  slots_.reserve(static_cast<std::size_t>(options_.max_clients));
  for (int i = 0; i < options_.max_clients; ++i) {
    auto slot = std::make_unique<Slot>(options_.result_queue_capacity);
    slot->tags.reset(tag_capacity);
    Slot* raw = slot.get();
    slot->stream_id = runtime_.add_stream(
        "net" + std::to_string(i), [this, raw](const runtime::StreamResult& r) {
          Slot& s = *raw;
          bool attached = false;
          {
            std::lock_guard<std::mutex> lock(s.mutex);
            s.scratch.tag = s.tags.pop();
            s.scratch.res = r;  // copy-assign, capacity reuse
            attached = s.attached.load(std::memory_order_acquire);
            if (attached) {
              if (s.results.push(s.scratch, &s.evicted) ==
                  runtime::PushResult::kReplacedOldest) {
                std::lock_guard<std::mutex> stats(stats_mutex_);
                ++counters_.results_dropped;
              }
            } else {
              std::lock_guard<std::mutex> stats(stats_mutex_);
              ++counters_.results_dropped;
            }
          }
          s.outstanding.fetch_sub(1, std::memory_order_release);
          if (attached) wake();
        });
    slots_.push_back(std::move(slot));
  }
}

DetectionService::~DetectionService() {
  stop();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

bool DetectionService::start(std::string* error) {
  PDET_REQUIRE(!started_);
  listener_ = Socket::listen_tcp(options_.host, options_.port, 64, error);
  if (!listener_.valid()) return false;
  port_ = listener_.local_port();
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    if (error != nullptr) *error = "pipe failed";
    listener_.close();
    return false;
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  (void)fcntl(wake_read_, F_SETFL, O_NONBLOCK);
  (void)fcntl(wake_write_, F_SETFL, O_NONBLOCK);
  started_ = true;
  running_.store(true, std::memory_order_release);
  runtime_.start();
  io_thread_ = std::thread([this] { io_main(); });
  return true;
}

void DetectionService::stop() {
  if (!started_ || !running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  wake();
  if (io_thread_.joinable()) io_thread_.join();
  runtime_.stop();
  running_.store(false, std::memory_order_release);
}

void DetectionService::wake() {
  if (wake_write_ < 0) return;
  const std::uint8_t b = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)!::write(wake_write_, &b, 1);
}

int DetectionService::acquire_slot() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = *slots_[i];
    if (s.attached.load(std::memory_order_acquire)) continue;
    if (s.outstanding.load(std::memory_order_acquire) != 0) continue;
    // Clear any results the previous owner never read.
    SlotResult stale;
    while (s.results.try_pop(stale)) {
    }
    s.attached.store(true, std::memory_order_release);
    return static_cast<int>(i);
  }
  return -1;
}

void DetectionService::send_error(Connection& conn, wire::ErrorCode code,
                                  const char* text) {
  wire::Error err;
  err.code = code;
  err.message = text;
  wire::encode_error(err, conn.wbuf);
}

void DetectionService::build_stats_report(wire::StatsReport& out) {
  const runtime::RuntimeStats rt = runtime_.stats();
  out.submitted = static_cast<std::uint64_t>(rt.submitted);
  out.completed = static_cast<std::uint64_t>(rt.completed);
  out.ok = static_cast<std::uint64_t>(rt.ok);
  out.degraded = static_cast<std::uint64_t>(rt.degraded);
  out.dropped_queue = static_cast<std::uint64_t>(rt.dropped_queue);
  out.dropped_deadline = static_cast<std::uint64_t>(rt.dropped_deadline);
  out.aggregate_fps = rt.aggregate_fps;
  out.frames_error = static_cast<std::uint64_t>(rt.errors);
  out.worker_faults = static_cast<std::uint64_t>(rt.worker_faults);
  out.worker_stalls = static_cast<std::uint64_t>(rt.worker_stalls);
  out.workers_replaced = static_cast<std::uint64_t>(rt.workers_replaced);
  out.poison_frames = static_cast<std::uint64_t>(rt.poison_frames);
  out.health_state = static_cast<std::uint32_t>(rt.health);
  out.score_backend = static_cast<std::uint32_t>(rt.backend);
  out.score_batches = static_cast<std::uint64_t>(rt.score_batches);
  out.score_windows = static_cast<std::uint64_t>(rt.score_windows);
  out.score_fill = static_cast<float>(rt.score_fill);
  out.guard_unusable = static_cast<std::uint64_t>(rt.guard_unusable);
  out.guard_soft = static_cast<std::uint64_t>(rt.guard_soft);
  out.camera_quarantines =
      static_cast<std::uint64_t>(rt.camera_quarantines);
  out.camera_recoveries = static_cast<std::uint64_t>(rt.camera_recoveries);
  out.cameras_suspect = static_cast<std::uint32_t>(rt.cameras_suspect);
  out.cameras_quarantined =
      static_cast<std::uint32_t>(rt.cameras_quarantined);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  out.net_frames_received =
      static_cast<std::uint64_t>(counters_.frames_received);
  out.net_results_sent = static_cast<std::uint64_t>(counters_.results_sent);
  out.net_results_dropped =
      static_cast<std::uint64_t>(counters_.results_dropped);
  out.net_decode_errors = static_cast<std::uint64_t>(counters_.decode_errors);
  out.net_frames_rejected =
      static_cast<std::uint64_t>(counters_.frames_rejected);
  out.active_connections =
      static_cast<std::uint32_t>(counters_.active_connections);
}

void DetectionService::build_telemetry_report(wire::TelemetryReport& out) {
  const runtime::RuntimeStats rt = runtime_.stats();
  out.uptime_seconds = rt.wall_seconds;
  out.health_state = static_cast<std::uint32_t>(rt.health);

  // Frame-timeline percentiles over the flight recorder's retained window.
  const obs::FlightRecorder& flight = runtime_.flight_recorder();
  out.timeline_frames = flight.total_recorded();
  const std::vector<obs::FrameTimeline> window = flight.snapshot();
  out.timeline_window = static_cast<std::uint32_t>(window.size());
  std::vector<double> admit, queue, engine, total;
  admit.reserve(window.size());
  queue.reserve(window.size());
  engine.reserve(window.size());
  total.reserve(window.size());
  for (const obs::FrameTimeline& t : window) {
    const obs::TimelineBreakdown b = obs::breakdown(t);
    admit.push_back(b.admit_ms);
    queue.push_back(b.queue_ms);
    engine.push_back(b.engine_ms);
    total.push_back(b.total_ms);
  }
  const auto pcts = [](std::span<const double> xs) {
    wire::TelemetryPercentiles p;
    if (!xs.empty()) {
      p.p50_ms = static_cast<float>(util::percentile(xs, 50.0));
      p.p99_ms = static_cast<float>(util::percentile(xs, 99.0));
    }
    return p;
  };
  out.admit = pcts(admit);
  out.queue = pcts(queue);
  out.engine = pcts(engine);
  out.total = pcts(total);

  // Refresh the registry before rendering so the scrape is current. Empty
  // text when metrics are disabled — the counters above still fill in.
  publish_metrics();
  out.prometheus = obs::Registry::instance().to_prometheus();
}

void DetectionService::handle_message(Connection& conn) {
  switch (conn.msg.type) {
    case wire::MsgType::kHello: {
      if (conn.slot >= 0) {
        send_error(conn, wire::ErrorCode::kProtocol, "duplicate hello");
        conn.closing = true;
        return;
      }
      if (conn.msg.hello.protocol_version != wire::kProtocolVersion) {
        send_error(conn, wire::ErrorCode::kVersionMismatch,
                   "unsupported protocol version");
        conn.closing = true;
        return;
      }
      const int slot = acquire_slot();
      if (slot < 0) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++counters_.connections_refused;
        }
        send_error(conn, wire::ErrorCode::kBusy, "no free stream slot");
        conn.closing = true;
        return;
      }
      conn.slot = slot;
      wire::HelloAck ack;
      ack.protocol_version = wire::kProtocolVersion;
      ack.model_dim = model_dim_;
      ack.model_crc = model_crc_;
      ack.stream_id =
          static_cast<std::uint32_t>(slots_[static_cast<std::size_t>(slot)]
                                         ->stream_id);
      ack.server_name = options_.name;
      wire::encode_hello_ack(ack, conn.wbuf);
      return;
    }
    case wire::MsgType::kSubmitFrame: {
      if (conn.slot < 0) {
        send_error(conn, wire::ErrorCode::kProtocol, "frame before hello");
        conn.closing = true;
        return;
      }
      if (conn.msg.frame.image.empty()) {
        // Unreachable through wire v2 decode (zero dims are kBadPayload),
        // kept as defense in depth — and non-fatal: reject the frame, keep
        // the connection.
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++counters_.frames_rejected;
        }
        send_error(conn, wire::ErrorCode::kBadFrame, "empty frame");
        return;
      }
      Slot& s = *slots_[static_cast<std::size_t>(conn.slot)];
      {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.tags.push(conn.msg.frame.tag);
      }
      s.outstanding.fetch_add(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++counters_.frames_received;
      }
      // Every submit outcome (accepted, evicted, rejected) produces exactly
      // one in-order delivery, so the tag/outstanding bookkeeping balances.
      // The tag rides along as trace context and service_recv anchors the
      // frame's wire-visible timeline offsets.
      (void)runtime_.submit(s.stream_id, conn.msg.frame.image,
                            conn.msg.frame.tag, obs::timeline_now_ns());
      return;
    }
    case wire::MsgType::kStatsQuery: {
      build_stats_report(conn.out_stats);
      wire::encode_stats_report(conn.out_stats, conn.wbuf);
      return;
    }
    case wire::MsgType::kTelemetryQuery: {
      build_telemetry_report(conn.out_telemetry);
      wire::encode_telemetry_report(conn.out_telemetry, conn.wbuf);
      return;
    }
    case wire::MsgType::kShutdown: {
      conn.draining = true;
      return;
    }
    case wire::MsgType::kHelloAck:
    case wire::MsgType::kResult:
    case wire::MsgType::kStatsReport:
    case wire::MsgType::kTelemetryReport:
      send_error(conn, wire::ErrorCode::kProtocol,
                 "server-to-client message from client");
      conn.closing = true;
      return;
    case wire::MsgType::kError: {
      // A client-reported error: log-free teardown of this connection.
      conn.closing = true;
      return;
    }
  }
}

void DetectionService::handle_readable(Connection& conn) {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    std::size_t got = 0;
    const IoStatus status = recv_some(conn.sock.fd(), chunk, got);
    if (status == IoStatus::kOk) {
      conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + got);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      counters_.bytes_in += static_cast<long long>(got);
      if (got == sizeof chunk) continue;  // more may be pending
      break;
    }
    if (status == IoStatus::kWouldBlock) break;
    conn.dead = true;  // kClosed or kError: peer is gone
    return;
  }

  while (!conn.closing && !conn.draining) {
    const std::span<const std::uint8_t> pending(conn.rbuf.data() + conn.rpos,
                                                conn.rbuf.size() - conn.rpos);
    std::size_t consumed = 0;
    const wire::DecodeStatus status =
        wire::decode_message(pending, conn.msg, consumed);
    if (status == wire::DecodeStatus::kNeedMore) break;
    if (status == wire::DecodeStatus::kBadPayload &&
        conn.msg.type == wire::MsgType::kSubmitFrame) {
      // The frame passed its CRC, so the framing is sound — only the
      // SubmitFrame fields are invalid (zero/oversized dimensions, payload
      // not matching w*h). Skip this one message, answer with a wire Error,
      // and keep the connection: one malformed frame must not kill a
      // camera feed.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++counters_.decode_errors;
        ++counters_.frames_rejected;
      }
      send_error(conn, wire::ErrorCode::kBadFrame,
                 "invalid frame dimensions/payload");
      conn.rpos += consumed;
      continue;
    }
    if (status != wire::DecodeStatus::kOk) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++counters_.decode_errors;
      }
      send_error(conn, wire::ErrorCode::kProtocol, wire::to_string(status));
      conn.closing = true;
      break;
    }
    conn.rpos += consumed;
    handle_message(conn);
  }

  // Compact the consumed prefix (cheap: leftovers are partial frames).
  if (conn.rpos == conn.rbuf.size()) {
    conn.rbuf.clear();
    conn.rpos = 0;
  } else if (conn.rpos > 0) {
    std::memmove(conn.rbuf.data(), conn.rbuf.data() + conn.rpos,
                 conn.rbuf.size() - conn.rpos);
    conn.rbuf.resize(conn.rbuf.size() - conn.rpos);
    conn.rpos = 0;
  }
}

namespace {

/// Microseconds from `from` to `to`, 0 when either stamp is missing or the
/// hop went backwards (a stamp of 0 means "hop not reached").
std::uint32_t us_offset(std::uint64_t from, std::uint64_t to) {
  if (from == 0 || to <= from) return 0;
  const std::uint64_t us = (to - from) / 1000;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(us, 0xFFFF'FFFFull));
}

}  // namespace

void DetectionService::flush_slot_queues() {
  for (auto& conn_ptr : conns_) {
    Connection& conn = *conn_ptr;
    if (conn.dead || conn.slot < 0) continue;
    Slot& s = *slots_[static_cast<std::size_t>(conn.slot)];
    while (conn.unsent() < options_.max_write_buffer &&
           s.results.try_pop(conn.popped)) {
      const runtime::StreamResult& r = conn.popped.res;
      wire::Result& out = conn.out_result;
      out.sequence = r.sequence;
      out.tag = conn.popped.tag;
      out.status = r.status;
      out.degrade_level = static_cast<std::uint8_t>(r.degrade_level);
      out.queue_wait_ms = static_cast<float>(r.queue_wait_ms);
      out.service_ms = static_cast<float>(r.service_ms);
      out.total_ms = static_cast<float>(r.total_ms);
      out.input_quality = r.input_quality;
      out.camera_state = r.camera_state;
      out.quality_reasons = r.quality_reasons;
      // Flatten the server-side timeline into wire offsets relative to
      // service receive; wire_send is stamped here, at encode time.
      const obs::FrameTimeline& t = r.timing;
      out.trace.gate_us = us_offset(t.service_recv_ns, t.gate_ns);
      out.trace.admit_us = us_offset(t.service_recv_ns, t.queue_admit_ns);
      out.trace.schedule_us = us_offset(t.service_recv_ns, t.schedule_ns);
      out.trace.engine_start_us =
          us_offset(t.service_recv_ns, t.engine_start_ns);
      out.trace.engine_end_us = us_offset(t.service_recv_ns, t.engine_end_ns);
      out.trace.deliver_us = us_offset(t.service_recv_ns, t.deliver_ns);
      out.trace.send_us =
          us_offset(t.service_recv_ns, obs::timeline_now_ns());
      out.trace.level_count = static_cast<std::uint8_t>(
          std::min<std::size_t>(t.level_count, obs::kTimelineMaxLevels));
      out.trace.level_us = t.level_us;
      out.detections = r.detections;  // copy-assign, capacity reuse
      wire::encode_result(out, conn.wbuf);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.results_sent;
      request_hist_.record(r.total_ms);
    }
  }
}

void DetectionService::try_send(Connection& conn) {
  while (conn.unsent() > 0) {
    std::size_t sent = 0;
    const IoStatus status = send_some(
        conn.sock.fd(),
        std::span<const std::uint8_t>(conn.wbuf.data() + conn.wpos,
                                      conn.unsent()),
        sent);
    if (status == IoStatus::kOk) {
      conn.wpos += sent;
      std::lock_guard<std::mutex> lock(stats_mutex_);
      counters_.bytes_out += static_cast<long long>(sent);
      continue;
    }
    if (status == IoStatus::kWouldBlock) return;
    conn.dead = true;
    return;
  }
  conn.wbuf.clear();
  conn.wpos = 0;
}

void DetectionService::close_connection(std::size_t index) {
  Connection& conn = *conns_[index];
  if (conn.slot >= 0) {
    slots_[static_cast<std::size_t>(conn.slot)]->attached.store(
        false, std::memory_order_release);
    conn.slot = -1;
  }
  conn.sock.close();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.connections_closed;
    --counters_.active_connections;
  }
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
}

void DetectionService::io_main() {
  // The obs layer is thread-safe, so the io thread records spans and
  // answers telemetry queries directly; service counters still aggregate
  // under stats_mutex_ so stats() stays one consistent snapshot.
  std::vector<pollfd> fds;
  bool stopping = false;
  while (true) {
    if (!stopping && stop_requested_.load(std::memory_order_acquire)) {
      stopping = true;
      listener_.close();
      // No reads from here on: the io thread is the only producer, so once
      // current buffers are parsed the runtime can drain fully.
      runtime_.drain();
      flush_slot_queues();
      const auto flush_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 options_.flush_timeout_ms));
      while (Clock::now() < flush_deadline) {
        flush_slot_queues();
        bool pending = false;
        for (auto& conn_ptr : conns_) {
          if (conn_ptr->dead) continue;
          try_send(*conn_ptr);
          if (conn_ptr->unsent() > 0 && !conn_ptr->dead) pending = true;
        }
        for (auto& slot : slots_) {
          if (slot->attached.load(std::memory_order_acquire) &&
              slot->results.size() > 0) {
            pending = true;
          }
        }
        if (!pending) break;
        // Wait for some client to accept more bytes.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      while (!conns_.empty()) close_connection(conns_.size() - 1);
      return;
    }

    fds.clear();
    fds.push_back(pollfd{wake_read_, POLLIN, 0});
    if (listener_.valid()) fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    const std::size_t conn_base = fds.size();
    // Snapshot: the accept loop below may append to conns_, and those new
    // connections have no pollfd entry this cycle.
    const std::size_t polled_conns = conns_.size();
    for (auto& conn_ptr : conns_) {
      short events = 0;
      if (!conn_ptr->closing && !conn_ptr->draining) events |= POLLIN;
      if (conn_ptr->unsent() > 0) events |= POLLOUT;
      fds.push_back(pollfd{conn_ptr->sock.fd(), events, 0});
    }
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);

    if ((fds[0].revents & POLLIN) != 0) {
      std::uint8_t drain_buf[256];
      while (::read(wake_read_, drain_buf, sizeof drain_buf) > 0) {
      }
    }
    if (listener_.valid() && fds.size() > 1 &&
        (fds[1].revents & POLLIN) != 0) {
      for (;;) {
        Socket accepted = listener_.accept();
        if (!accepted.valid()) break;
        auto conn = std::make_unique<Connection>();
        conn->sock = std::move(accepted);
        conns_.push_back(std::move(conn));
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++counters_.connections_accepted;
        ++counters_.active_connections;
      }
    }

    for (std::size_t i = 0; i < polled_conns; ++i) {
      const short revents = fds[conn_base + i].revents;
      Connection& conn = *conns_[i];
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        conn.dead = true;
        continue;
      }
      if ((revents & (POLLIN | POLLHUP)) != 0 && !conn.closing &&
          !conn.draining) {
        handle_readable(conn);
      }
    }

    flush_slot_queues();
    for (auto& conn_ptr : conns_) {
      if (!conn_ptr->dead) try_send(*conn_ptr);
    }

    // Reap: dead sockets; closed-after-flush errors; drained shutdowns.
    for (std::size_t i = conns_.size(); i-- > 0;) {
      Connection& conn = *conns_[i];
      bool finished = conn.dead;
      if (!finished && conn.closing && conn.unsent() == 0) finished = true;
      if (!finished && conn.draining && conn.unsent() == 0) {
        if (conn.slot < 0) {
          // Shutdown before hello: no stream, nothing in flight to wait on.
          finished = true;
        } else {
          Slot& s = *slots_[static_cast<std::size_t>(conn.slot)];
          if (s.outstanding.load(std::memory_order_acquire) == 0 &&
              s.results.size() == 0) {
            finished = true;
          }
        }
      }
      if (finished) close_connection(i);
    }
  }
}

ServiceStats DetectionService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = counters_;
    out.request_ms = request_hist_.summary();
  }
  out.runtime = runtime_.stats();
  return out;
}

void DetectionService::publish_metrics() {
  const ServiceStats s = stats();
  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  const auto delta = [](const char* name, long long current, long long& last) {
    if (current != last) {
      obs::counter_add(name, current - last);
      last = current;
    }
  };
  delta("net.connections_accepted", s.connections_accepted,
        published_.connections_accepted);
  delta("net.connections_closed", s.connections_closed,
        published_.connections_closed);
  delta("net.connections_refused", s.connections_refused,
        published_.connections_refused);
  delta("net.frames_received", s.frames_received, published_.frames_received);
  delta("net.frames_rejected", s.frames_rejected, published_.frames_rejected);
  delta("net.results_sent", s.results_sent, published_.results_sent);
  delta("net.results_dropped", s.results_dropped, published_.results_dropped);
  delta("net.decode_errors", s.decode_errors, published_.decode_errors);
  delta("net.bytes_in", s.bytes_in, published_.bytes_in);
  delta("net.bytes_out", s.bytes_out, published_.bytes_out);
  obs::gauge_set("net.active_connections",
                 static_cast<double>(s.active_connections));
  obs::gauge_set("net.request_ms.p50", s.request_ms.p50);
  obs::gauge_set("net.request_ms.p99", s.request_ms.p99);
  runtime_.publish_metrics();
}

}  // namespace pdet::net
