#include "src/net/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace pdet::net {
namespace {

using Clock = std::chrono::steady_clock;

double ms_until(Clock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline - Clock::now())
      .count();
}

/// In-flight encode stamps kept per connection; beyond this the oldest is
/// dropped and its eventual result grafts without the client-side leg.
constexpr std::size_t kMaxEncodeStamps = 256;

}  // namespace

BackoffPolicy client_backoff_policy(const ClientOptions& options) {
  BackoffPolicy policy;
  policy.attempts = options.reconnect_attempts;
  policy.base_ms = options.reconnect_base_ms;
  policy.max_ms = options.reconnect_max_ms;
  policy.jitter = options.reconnect_jitter;
  policy.seed = options.reconnect_seed;
  if (policy.seed == 0) {
    // FNV-1a over the client name: distinct camera names decorrelate by
    // default, equal configurations stay reproducible.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : options.name) {
      h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    }
    policy.seed = h | 1;  // never hand Rng a zero-ish degenerate seed
  }
  return policy;
}

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      backoff_(client_backoff_policy(options_)) {}

Client::~Client() { disconnect(); }

void Client::fail_link(const std::string& why) {
  last_error_ = why;
  if (sock_.valid()) link_lost_ = true;  // an *established* link died
  sock_.close();
  recv_buf_.clear();
  recv_pos_ = 0;
}

bool Client::connect_once(std::string* error) {
  sock_ = Socket::connect_tcp(options_.host, options_.port,
                              options_.connect_timeout_ms, error);
  if (!sock_.valid()) return false;
  recv_buf_.clear();
  recv_pos_ = 0;
  buffered_results_.clear();
  buffered_pos_ = 0;

  wire::Hello hello;
  hello.protocol_version = wire::kProtocolVersion;
  hello.client_name = options_.name;
  send_buf_.clear();
  wire::encode_hello(hello, send_buf_);
  if (!send_all(send_buf_)) {
    if (error != nullptr) *error = "handshake send failed";
    sock_.close();
    return false;
  }
  if (!read_message(options_.io_timeout_ms)) {
    if (error != nullptr) *error = "handshake read failed: " + last_error_;
    sock_.close();
    return false;
  }
  if (msg_.type == wire::MsgType::kError) {
    if (error != nullptr) {
      *error = std::string("server refused: ") + msg_.error.message;
    }
    sock_.close();
    return false;
  }
  if (msg_.type != wire::MsgType::kHelloAck ||
      msg_.hello_ack.protocol_version != wire::kProtocolVersion) {
    if (error != nullptr) *error = "bad handshake reply";
    sock_.close();
    return false;
  }
  hello_ack_ = msg_.hello_ack;
  // A new connection is a new delivery stream: tags restart, sequence
  // continuity is only promised within a connection.
  submitted_conn_ = 0;
  expected_tag_ = 0;
  have_last_sequence_ = false;
  encode_stamps_.clear();
  return true;
}

bool Client::connect() {
  if (connected()) return true;
  std::string error;
  backoff_.reset();
  for (;;) {
    if (connect_once(&error)) {
      // "Reconnect" = re-establishing after an established link was lost
      // (whether or not backoff was needed: a restarted server may accept
      // the very first redial).
      if (link_lost_) ++reconnects_;
      link_lost_ = false;
      return true;
    }
    if (!backoff_.can_retry()) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_.next_delay_ms()));
  }
  last_error_ = "connect failed: " + error;
  return false;
}

void Client::disconnect() {
  if (!sock_.valid()) return;
  send_buf_.clear();
  wire::encode_shutdown(send_buf_);
  (void)send_all(send_buf_);  // best effort
  sock_.close();
}

bool Client::ensure_connected() {
  // A restarted server fails the next *read*, but a send into the half-open
  // socket would "succeed" into the void — probe for EOF first so submit()
  // reconnects instead.
  if (connected() && peer_closed(sock_.fd())) {
    fail_link("connection closed by server");
  }
  return connected() || connect();
}

bool Client::send_all(const std::vector<std::uint8_t>& buf) {
  std::size_t at = 0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             options_.io_timeout_ms));
  while (at < buf.size()) {
    std::size_t sent = 0;
    const IoStatus status = send_some(
        sock_.fd(),
        std::span<const std::uint8_t>(buf.data() + at, buf.size() - at),
        sent);
    switch (status) {
      case IoStatus::kOk:
        at += sent;
        break;
      case IoStatus::kWouldBlock: {
        const double left = ms_until(deadline);
        if (left <= 0.0 || !wait_writable(sock_.fd(), left)) {
          fail_link("send timed out");
          return false;
        }
        break;
      }
      case IoStatus::kClosed:
      case IoStatus::kError:
        fail_link("send failed (connection lost)");
        return false;
    }
  }
  return true;
}

bool Client::read_message(double timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  for (;;) {
    // Parse before reading: a previous read may have buffered a frame.
    const std::span<const std::uint8_t> pending(recv_buf_.data() + recv_pos_,
                                                recv_buf_.size() - recv_pos_);
    std::size_t consumed = 0;
    const wire::DecodeStatus status =
        wire::decode_message(pending, msg_, consumed);
    if (status == wire::DecodeStatus::kOk) {
      recv_pos_ += consumed;
      if (recv_pos_ == recv_buf_.size()) {
        recv_buf_.clear();
        recv_pos_ = 0;
      } else if (recv_pos_ > (64u << 10)) {
        std::memmove(recv_buf_.data(), recv_buf_.data() + recv_pos_,
                     recv_buf_.size() - recv_pos_);
        recv_buf_.resize(recv_buf_.size() - recv_pos_);
        recv_pos_ = 0;
      }
      return true;
    }
    if (status != wire::DecodeStatus::kNeedMore) {
      ++protocol_errors_;
      fail_link(std::string("protocol error: ") + wire::to_string(status));
      return false;
    }
    // A zero/expired deadline still polls once: timeout 0 means "drain
    // whatever the kernel already has", not "never look at the socket".
    const double left = std::max(0.0, ms_until(deadline));
    if (!wait_readable(sock_.fd(), left)) {
      last_error_ = "read timed out";  // link intact: slow is not dead
      return false;
    }
    std::uint8_t chunk[64 * 1024];
    std::size_t got = 0;
    switch (recv_some(sock_.fd(), chunk, got)) {
      case IoStatus::kOk:
        recv_buf_.insert(recv_buf_.end(), chunk, chunk + got);
        break;
      case IoStatus::kWouldBlock:
        break;  // spurious wakeup; re-poll
      case IoStatus::kClosed:
        fail_link("connection closed by server");
        return false;
      case IoStatus::kError:
        fail_link("read failed");
        return false;
    }
  }
}

bool Client::submit(const imgproc::ImageF& frame) {
  for (int attempt = 0;; ++attempt) {
    if (!ensure_connected()) return false;
    frame_msg_.tag = static_cast<std::uint64_t>(submitted_conn_);
    frame_msg_.image = frame;  // copy-assign into reused staging buffer
    send_buf_.clear();
    const std::uint64_t encode_ns = obs::timeline_now_ns();
    wire::encode_submit_frame(frame_msg_, send_buf_);
    if (send_all(send_buf_)) {
      if (encode_stamps_.size() >= kMaxEncodeStamps) {
        encode_stamps_.erase(encode_stamps_.begin());
      }
      encode_stamps_.emplace_back(frame_msg_.tag, encode_ns);
      ++submitted_conn_;
      return true;
    }
    // Link dropped mid-frame: reconnect and resend this frame on the fresh
    // connection (it was never accepted), unless the schedule is exhausted.
    if (options_.reconnect_attempts == 0 ||
        attempt >= options_.reconnect_attempts) {
      return false;
    }
  }
}

void Client::note_result(const wire::Result& r) {
  ++results_received_;
  // Tags count up from 0 per connection; server sequences strictly
  // increase. A *forward* tag gap is server-side shedding (drop-oldest on
  // this connection's result queue under backpressure) — expected under
  // load, so it feeds results_missed_ instead of breaking in_order_.
  if (r.tag < expected_tag_ ||
      (have_last_sequence_ && r.sequence <= last_sequence_)) {
    in_order_ = false;
  } else if (r.tag > expected_tag_) {
    results_missed_ += static_cast<long long>(r.tag - expected_tag_);
  }
  expected_tag_ = r.tag + 1;
  last_sequence_ = r.sequence;
  have_last_sequence_ = true;
  graft_timeline(r);
}

void Client::graft_timeline(const wire::Result& r) {
  const std::uint64_t decode_ns = obs::timeline_now_ns();
  // Pop stamps for shed frames (tags are in order); keep the matching one.
  std::uint64_t encode_ns = 0;
  std::size_t drop = 0;
  for (; drop < encode_stamps_.size() && encode_stamps_[drop].first <= r.tag;
       ++drop) {
    if (encode_stamps_[drop].first == r.tag) {
      encode_ns = encode_stamps_[drop].second;
    }
  }
  if (drop > 0) {
    encode_stamps_.erase(encode_stamps_.begin(),
                         encode_stamps_.begin() +
                             static_cast<std::ptrdiff_t>(drop));
  }

  obs::FrameTimeline t;
  t.trace_id = r.tag;
  t.stream = static_cast<int>(hello_ack_.stream_id);
  t.sequence = r.sequence;
  t.status = static_cast<std::uint8_t>(r.status);
  t.degrade_level = r.degrade_level;
  t.input_quality = r.input_quality;
  t.camera_state = r.camera_state;
  t.client_encode_ns = encode_ns;
  t.client_decode_ns = decode_ns;
  if (encode_ns != 0 && decode_ns > encode_ns) {
    // Place the server hops on the client clock: the server held the frame
    // for send_us, the rest of the round trip was the network, and the
    // midpoint estimate splits it evenly (clocks never cross the wire).
    const std::uint64_t server_ns =
        static_cast<std::uint64_t>(r.trace.send_us) * 1000;
    const std::uint64_t rtt_ns = decode_ns - encode_ns;
    const std::uint64_t one_way_ns =
        rtt_ns > server_ns ? (rtt_ns - server_ns) / 2 : 0;
    const std::uint64_t recv_ns = encode_ns + one_way_ns;
    const auto hop = [recv_ns](std::uint32_t us) {
      return us == 0 ? 0 : recv_ns + static_cast<std::uint64_t>(us) * 1000;
    };
    t.service_recv_ns = recv_ns;
    t.gate_ns = hop(r.trace.gate_us);
    t.queue_admit_ns = hop(r.trace.admit_us);
    t.schedule_ns = hop(r.trace.schedule_us);
    t.engine_start_ns = hop(r.trace.engine_start_us);
    t.engine_end_ns = hop(r.trace.engine_end_us);
    t.deliver_ns = hop(r.trace.deliver_us);
    t.wire_send_ns = hop(r.trace.send_us);
  }
  t.level_count = static_cast<std::uint8_t>(std::min<std::size_t>(
      r.trace.level_count, obs::kTimelineMaxLevels));
  t.level_us = r.trace.level_us;
  last_timeline_ = t;
  have_timeline_ = true;
}

bool Client::last_timeline(obs::FrameTimeline& out) const {
  if (!have_timeline_) return false;
  out = last_timeline_;
  return true;
}

bool Client::next_result(wire::Result& out, double timeout_ms) {
  if (buffered_pos_ < buffered_results_.size()) {
    out = buffered_results_[buffered_pos_++];
    if (buffered_pos_ == buffered_results_.size()) {
      buffered_results_.clear();
      buffered_pos_ = 0;
    }
    return true;
  }
  if (!connected()) {
    last_error_ = "not connected";
    return false;
  }
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  for (;;) {
    if (!read_message(std::max(0.0, ms_until(deadline)))) return false;
    switch (msg_.type) {
      case wire::MsgType::kResult: {
        out = msg_.result;
        note_result(out);
        return true;
      }
      case wire::MsgType::kError:
        ++protocol_errors_;
        fail_link(std::string("server error: ") + msg_.error.message);
        return false;
      case wire::MsgType::kStatsReport:
      case wire::MsgType::kTelemetryReport:
        continue;  // stale report (query timed out earlier); skip
      default:
        ++protocol_errors_;
        fail_link("unexpected message type");
        return false;
    }
  }
}

bool Client::query_stats(wire::StatsReport& out, double timeout_ms) {
  if (!ensure_connected()) return false;
  send_buf_.clear();
  wire::encode_stats_query(send_buf_);
  if (!send_all(send_buf_)) return false;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  for (;;) {
    if (!read_message(std::max(0.0, ms_until(deadline)))) return false;
    switch (msg_.type) {
      case wire::MsgType::kStatsReport:
        out = msg_.stats;
        return true;
      case wire::MsgType::kTelemetryReport:
        continue;  // stale telemetry report; skip
      case wire::MsgType::kResult:
        // Keep the delivery contract: park it for next_result().
        note_result(msg_.result);
        buffered_results_.push_back(msg_.result);
        continue;
      case wire::MsgType::kError:
        ++protocol_errors_;
        fail_link(std::string("server error: ") + msg_.error.message);
        return false;
      default:
        ++protocol_errors_;
        fail_link("unexpected message type");
        return false;
    }
  }
}

bool Client::query_telemetry(wire::TelemetryReport& out, double timeout_ms) {
  if (!ensure_connected()) return false;
  send_buf_.clear();
  wire::encode_telemetry_query(send_buf_);
  if (!send_all(send_buf_)) return false;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  for (;;) {
    if (!read_message(std::max(0.0, ms_until(deadline)))) return false;
    switch (msg_.type) {
      case wire::MsgType::kTelemetryReport:
        out = msg_.telemetry;
        return true;
      case wire::MsgType::kStatsReport:
        continue;  // stale stats report; skip
      case wire::MsgType::kResult:
        // Keep the delivery contract: park it for next_result().
        note_result(msg_.result);
        buffered_results_.push_back(msg_.result);
        continue;
      case wire::MsgType::kError:
        ++protocol_errors_;
        fail_link(std::string("server error: ") + msg_.error.message);
        return false;
      default:
        ++protocol_errors_;
        fail_link("unexpected message type");
        return false;
    }
  }
}

}  // namespace pdet::net
