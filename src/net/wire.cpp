#include "src/net/wire.hpp"

#include <algorithm>

#include "src/util/bytes.hpp"

namespace pdet::net::wire {
namespace {

using util::ByteReader;
using util::ByteWriter;

/// Offsets within the fixed header (see the header-file diagram).
constexpr std::size_t kLenOffset = 8;
constexpr std::size_t kCrcOffset = 12;

/// Begin one frame: write the header with length/CRC placeholders and return
/// the absolute offset of the frame start for end_frame() to patch.
std::size_t begin_frame(ByteWriter& w, MsgType type) {
  const std::size_t frame_at = w.offset();
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // reserved
  w.u32(0);  // payload_len, patched
  w.u32(0);  // crc32, patched
  return frame_at;
}

void end_frame(ByteWriter& w, std::vector<std::uint8_t>& buf,
               std::size_t frame_at) {
  const std::size_t payload_len = w.offset() - frame_at - kHeaderSize;
  w.patch_u32(frame_at + kLenOffset,
              static_cast<std::uint32_t>(payload_len));
  // CRC covers header[0,12) ++ payload — the crc field itself stays zero
  // while the digest is computed, then lands at [12,16).
  const std::span<const std::uint8_t> all(buf.data() + frame_at,
                                          w.offset() - frame_at);
  const std::uint32_t head_crc = util::crc32(all.subspan(0, kCrcOffset));
  const std::uint32_t full_crc =
      util::crc32(all.subspan(kHeaderSize), head_crc);
  w.patch_u32(frame_at + kCrcOffset, full_crc);
}

bool decode_hello(ByteReader& r, Hello& out) {
  out.protocol_version = r.u32();
  return r.str(out.client_name, kMaxNameLen) && r.exhausted();
}

bool decode_hello_ack(ByteReader& r, HelloAck& out) {
  out.protocol_version = r.u32();
  out.model_dim = r.u32();
  out.model_crc = r.u32();
  out.stream_id = r.u32();
  return r.str(out.server_name, kMaxNameLen) && r.exhausted();
}

bool decode_submit_frame(ByteReader& r, SubmitFrame& out) {
  out.tag = r.u64();
  const std::uint32_t width = r.u32();
  const std::uint32_t height = r.u32();
  // Dimension validation happens here, before any allocation: zero-area
  // frames and oversized axes are rejected while the payload is still just
  // bytes. The payload length must equal width*height floats exactly.
  if (!r.ok() || width == 0 || height == 0 || width > kMaxFrameDim ||
      height > kMaxFrameDim) {
    return false;
  }
  const std::size_t pixels =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  if (r.remaining() != pixels * sizeof(float)) return false;
  out.image.reset(static_cast<int>(width), static_cast<int>(height));
  return r.f32_array(out.image.pixels()) && r.exhausted();
}

bool decode_result(ByteReader& r, Result& out) {
  out.sequence = r.u64();
  out.tag = r.u64();
  const std::uint8_t status = r.u8();
  if (status >
      static_cast<std::uint8_t>(runtime::FrameStatus::kDegradedInput)) {
    return false;
  }
  out.status = static_cast<runtime::FrameStatus>(status);
  out.degrade_level = r.u8();
  r.skip(2);  // pad
  out.queue_wait_ms = r.f32();
  out.service_ms = r.f32();
  out.total_ms = r.f32();
  // v5 frame-quality block: integrity verdict + camera health + reasons.
  out.input_quality = r.u8();
  out.camera_state = r.u8();
  r.skip(2);  // pad
  out.quality_reasons = r.u32();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxDetections) return false;
  // 28 bytes per detection plus the fixed prefix of the v3/v5 trace block
  // (seven u32 hop offsets + u8 level count); reject inconsistent counts
  // before resizing. The trace block's own length is variable
  // (level_count), so the exact-size check is the final exhausted().
  if (r.remaining() < static_cast<std::size_t>(count) * 28 + 29) return false;
  out.detections.resize(count);
  for (detect::Detection& d : out.detections) {
    d.x = r.i32();
    d.y = r.i32();
    d.width = r.i32();
    d.height = r.i32();
    d.score = r.f32();
    d.scale = r.f64();
  }
  // v3 trace block (+ gate_us in v5): seven u32 hop offsets, u8 level
  // count, level times.
  out.trace.admit_us = r.u32();
  out.trace.schedule_us = r.u32();
  out.trace.engine_start_us = r.u32();
  out.trace.engine_end_us = r.u32();
  out.trace.deliver_us = r.u32();
  out.trace.send_us = r.u32();
  out.trace.gate_us = r.u32();
  const std::uint8_t levels = r.u8();
  if (!r.ok() || levels > obs::kTimelineMaxLevels) return false;
  out.trace.level_count = levels;
  out.trace.level_us.fill(0);
  for (std::uint8_t i = 0; i < levels; ++i) {
    out.trace.level_us[i] = r.u32();
  }
  return r.exhausted();
}

bool decode_telemetry_report(ByteReader& r, TelemetryReport& out) {
  out.uptime_seconds = r.f64();
  out.health_state = r.u32();
  out.timeline_frames = r.u64();
  out.timeline_window = r.u32();
  for (TelemetryPercentiles* p :
       {&out.admit, &out.queue, &out.engine, &out.total}) {
    p->p50_ms = r.f32();
    p->p99_ms = r.f32();
  }
  return r.ok() && r.str(out.prometheus, kMaxTelemetryTextLen) &&
         r.exhausted();
}

bool decode_stats_report(ByteReader& r, StatsReport& out) {
  out.submitted = r.u64();
  out.completed = r.u64();
  out.ok = r.u64();
  out.degraded = r.u64();
  out.dropped_queue = r.u64();
  out.dropped_deadline = r.u64();
  out.aggregate_fps = r.f64();
  out.net_frames_received = r.u64();
  out.net_results_sent = r.u64();
  out.net_results_dropped = r.u64();
  out.net_decode_errors = r.u64();
  out.active_connections = r.u32();
  out.frames_error = r.u64();
  out.worker_faults = r.u64();
  out.worker_stalls = r.u64();
  out.workers_replaced = r.u64();
  out.poison_frames = r.u64();
  out.net_frames_rejected = r.u64();
  out.health_state = r.u32();
  out.score_backend = r.u32();
  out.score_batches = r.u64();
  out.score_windows = r.u64();
  out.score_fill = r.f32();
  out.guard_unusable = r.u64();
  out.guard_soft = r.u64();
  out.camera_quarantines = r.u64();
  out.camera_recoveries = r.u64();
  out.cameras_suspect = r.u32();
  out.cameras_quarantined = r.u32();
  return r.ok() && r.exhausted();
}

bool decode_error(ByteReader& r, Error& out) {
  out.code = static_cast<ErrorCode>(r.u32());
  return r.str(out.message, kMaxErrorLen) && r.exhausted();
}

}  // namespace

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadCrc: return "bad-crc";
    case DecodeStatus::kBadPayload: return "bad-payload";
    case DecodeStatus::kUnknownType: return "unknown-type";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kVersionMismatch: return "version-mismatch";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kBadFrame: return "bad-frame";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

void encode_hello(const Hello& msg, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kHello);
  w.u32(msg.protocol_version);
  w.str(msg.client_name);
  end_frame(w, out, at);
}

void encode_hello_ack(const HelloAck& msg, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kHelloAck);
  w.u32(msg.protocol_version);
  w.u32(msg.model_dim);
  w.u32(msg.model_crc);
  w.u32(msg.stream_id);
  w.str(msg.server_name);
  end_frame(w, out, at);
}

void encode_submit_frame(const SubmitFrame& msg,
                         std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kSubmitFrame);
  w.u64(msg.tag);
  w.u32(static_cast<std::uint32_t>(msg.image.width()));
  w.u32(static_cast<std::uint32_t>(msg.image.height()));
  w.f32_array(msg.image.pixels());
  end_frame(w, out, at);
}

void encode_result(const Result& msg, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kResult);
  w.u64(msg.sequence);
  w.u64(msg.tag);
  w.u8(static_cast<std::uint8_t>(msg.status));
  w.u8(msg.degrade_level);
  w.u16(0);  // pad
  w.f32(msg.queue_wait_ms);
  w.f32(msg.service_ms);
  w.f32(msg.total_ms);
  w.u8(msg.input_quality);
  w.u8(msg.camera_state);
  w.u16(0);  // pad
  w.u32(msg.quality_reasons);
  w.u32(static_cast<std::uint32_t>(msg.detections.size()));
  for (const detect::Detection& d : msg.detections) {
    w.i32(d.x);
    w.i32(d.y);
    w.i32(d.width);
    w.i32(d.height);
    w.f32(d.score);
    w.f64(d.scale);
  }
  const std::uint8_t levels = std::min<std::uint8_t>(
      msg.trace.level_count,
      static_cast<std::uint8_t>(obs::kTimelineMaxLevels));
  w.u32(msg.trace.admit_us);
  w.u32(msg.trace.schedule_us);
  w.u32(msg.trace.engine_start_us);
  w.u32(msg.trace.engine_end_us);
  w.u32(msg.trace.deliver_us);
  w.u32(msg.trace.send_us);
  w.u32(msg.trace.gate_us);
  w.u8(levels);
  for (std::uint8_t i = 0; i < levels; ++i) {
    w.u32(msg.trace.level_us[i]);
  }
  end_frame(w, out, at);
}

void encode_stats_query(std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kStatsQuery);
  end_frame(w, out, at);
}

void encode_stats_report(const StatsReport& msg,
                         std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kStatsReport);
  w.u64(msg.submitted);
  w.u64(msg.completed);
  w.u64(msg.ok);
  w.u64(msg.degraded);
  w.u64(msg.dropped_queue);
  w.u64(msg.dropped_deadline);
  w.f64(msg.aggregate_fps);
  w.u64(msg.net_frames_received);
  w.u64(msg.net_results_sent);
  w.u64(msg.net_results_dropped);
  w.u64(msg.net_decode_errors);
  w.u32(msg.active_connections);
  w.u64(msg.frames_error);
  w.u64(msg.worker_faults);
  w.u64(msg.worker_stalls);
  w.u64(msg.workers_replaced);
  w.u64(msg.poison_frames);
  w.u64(msg.net_frames_rejected);
  w.u32(msg.health_state);
  w.u32(msg.score_backend);
  w.u64(msg.score_batches);
  w.u64(msg.score_windows);
  w.f32(msg.score_fill);
  w.u64(msg.guard_unusable);
  w.u64(msg.guard_soft);
  w.u64(msg.camera_quarantines);
  w.u64(msg.camera_recoveries);
  w.u32(msg.cameras_suspect);
  w.u32(msg.cameras_quarantined);
  end_frame(w, out, at);
}

void encode_telemetry_query(std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kTelemetryQuery);
  end_frame(w, out, at);
}

void encode_telemetry_report(const TelemetryReport& msg,
                             std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kTelemetryReport);
  w.f64(msg.uptime_seconds);
  w.u32(msg.health_state);
  w.u64(msg.timeline_frames);
  w.u32(msg.timeline_window);
  for (const TelemetryPercentiles* p :
       {&msg.admit, &msg.queue, &msg.engine, &msg.total}) {
    w.f32(p->p50_ms);
    w.f32(p->p99_ms);
  }
  w.str(std::string_view(msg.prometheus)
            .substr(0, kMaxTelemetryTextLen));
  end_frame(w, out, at);
}

void encode_error(const Error& msg, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kError);
  w.u32(static_cast<std::uint32_t>(msg.code));
  w.str(msg.message);
  end_frame(w, out, at);
}

void encode_shutdown(std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  const std::size_t at = begin_frame(w, MsgType::kShutdown);
  end_frame(w, out, at);
}

DecodeStatus decode_message(std::span<const std::uint8_t> data, Message& out,
                            std::size_t& consumed) {
  consumed = 0;
  if (data.size() < kHeaderSize) return DecodeStatus::kNeedMore;
  ByteReader header(data.subspan(0, kHeaderSize));
  const std::uint32_t magic = header.u32();
  const std::uint8_t version = header.u8();
  const std::uint8_t type = header.u8();
  header.u16();  // reserved
  const std::uint32_t payload_len = header.u32();
  const std::uint32_t declared_crc = header.u32();
  if (magic != kMagic) return DecodeStatus::kBadMagic;
  if (version != kProtocolVersion) return DecodeStatus::kBadVersion;
  if (payload_len > kMaxPayloadBytes) return DecodeStatus::kBadLength;
  if (data.size() < kHeaderSize + payload_len) return DecodeStatus::kNeedMore;

  const std::span<const std::uint8_t> payload =
      data.subspan(kHeaderSize, payload_len);
  const std::uint32_t head_crc = util::crc32(data.subspan(0, kCrcOffset));
  if (util::crc32(payload, head_crc) != declared_crc) {
    return DecodeStatus::kBadCrc;
  }

  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kTelemetryReport)) {
    return DecodeStatus::kUnknownType;
  }
  out.type = static_cast<MsgType>(type);

  ByteReader r(payload);
  bool ok = false;
  switch (out.type) {
    case MsgType::kHello: ok = decode_hello(r, out.hello); break;
    case MsgType::kHelloAck: ok = decode_hello_ack(r, out.hello_ack); break;
    case MsgType::kSubmitFrame:
      ok = decode_submit_frame(r, out.frame);
      break;
    case MsgType::kResult: ok = decode_result(r, out.result); break;
    case MsgType::kStatsQuery: ok = payload.empty(); break;
    case MsgType::kStatsReport:
      ok = decode_stats_report(r, out.stats);
      break;
    case MsgType::kError: ok = decode_error(r, out.error); break;
    case MsgType::kShutdown: ok = payload.empty(); break;
    case MsgType::kTelemetryQuery: ok = payload.empty(); break;
    case MsgType::kTelemetryReport:
      ok = decode_telemetry_report(r, out.telemetry);
      break;
  }
  if (!ok) {
    // The frame passed its CRC, so the framing (and out.type) is sound even
    // though the fields are not: report the full frame as consumed so a
    // caller may skip this one message and keep the stream alive.
    consumed = kHeaderSize + payload_len;
    return DecodeStatus::kBadPayload;
  }
  consumed = kHeaderSize + payload_len;
  return DecodeStatus::kOk;
}

}  // namespace pdet::net::wire
