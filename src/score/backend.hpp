// Pluggable batched window scoring (pdet::score).
//
// The paper's real-time budget is dominated by per-window SVM classification,
// and the GPU pedestrian literature (Campmany et al., PAPERS.md) gets its
// wins by *batching* window scoring rather than by smarter math. This layer
// is the seam that makes batching (and accelerator offload) a configuration
// choice instead of a rewrite: the scanner fills a ScoreBatch — a contiguous
// feature block plus per-window metadata — and a ScoringBackend turns the
// whole batch into scores:
//
//   scan (hog::extract_window)──▶ ScoreBatch ──▶ ScoringBackend ──▶ scores
//                                 (rows+tags)     scalar | batch | hwsim
//
// Backends score rows independently, so a window's score never depends on
// what else shares its batch — the property that lets the runtime coalesce
// windows across streams (hub.hpp) without perturbing per-stream results.
//
// Contract notes:
//  * ScoreBatch storage is plain reusable scratch in the engine workspace
//    style: configure() re-shapes in place and never releases, so a warm
//    batch makes scoring allocation-free.
//  * Rows start 64-byte aligned (padded stride), so a vectorized kernel can
//    use aligned loads per row.
//  * Backends keep their own lock-free BackendStats; obs metrics for scoring
//    (svm.dot_products, score.batches, score.batch_fill) are recorded at the
//    *call site* (the scanner), not here — so a muted engine lane's counts
//    can be compensated exactly, and a cross-stream hub draining another
//    worker's batch does not mis-attribute them.
//  * The fault site "score.batch" (see fault/injector.hpp) fires inside
//    score(): a backend failure surfaces as an exception in the frame that
//    owns the batch and rides the runtime's poison-frame path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "src/svm/linear_svm.hpp"

namespace pdet::score {

/// Which scoring implementation serves a pipeline. kAuto resolves to the
/// PDET_SCORE_BACKEND environment override (CI forces `batch` there) or to
/// kScalar — the bit-identical port of the pre-backend code path.
enum class BackendKind : std::uint8_t {
  kAuto = 0,   ///< resolve via environment, default kScalar
  kScalar = 1, ///< per-row svm::LinearModel::decision (bit-identical)
  kBatch = 2,  ///< blocked/unrolled batch kernel (bounded-ULP vs scalar)
  kHwsim = 3,  ///< MACBAR offload model (quantized, simulated latency)
};

const char* to_string(BackendKind kind);

/// Parse a CLI spelling ("scalar" | "batch" | "hwsim" | "auto"). Returns
/// false on anything else, leaving `out` untouched.
bool parse_backend(std::string_view name, BackendKind& out);

/// Resolve kAuto: PDET_SCORE_BACKEND=scalar|batch (read once per process)
/// or kScalar. Explicit kinds pass through untouched, so tests pinning a
/// backend stay pinned under the CI override.
BackendKind resolve(BackendKind requested);

/// Windows per batch unless the caller picks otherwise. Large enough to
/// amortize per-batch costs, small enough that one batch of descriptors
/// (64 x ~4 KB) stays cache-resident.
inline constexpr std::size_t kDefaultBatchCapacity = 64;

/// A batch of candidate windows: `count` feature rows of `dimension` floats
/// (row stride padded so each row starts 64-byte aligned), a caller tag per
/// row (the scanner packs the window anchor), and a parallel score row
/// filled by the backend. Reusable scratch: configure() keeps storage.
class ScoreBatch {
 public:
  /// Re-shape for `dim`-float rows and `capacity` windows; clears the count.
  /// Never shrinks storage (engine-workspace reuse discipline).
  void configure(std::size_t dim, std::size_t capacity);

  std::size_t dimension() const { return dim_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == capacity_; }

  /// Append a row: returns the (aligned) destination span for the caller to
  /// fill with the window descriptor. Requires !full().
  std::span<float> push(std::uint64_t tag);

  std::span<const float> row(std::size_t i) const;
  std::uint64_t tag(std::size_t i) const { return tags_[i]; }
  float score(std::size_t i) const { return scores_[i]; }
  void set_score(std::size_t i, float s) { scores_[i] = s; }

  /// Fraction of capacity used — the batch-fill metric.
  double fill() const {
    return capacity_ > 0
               ? static_cast<double>(count_) / static_cast<double>(capacity_)
               : 0.0;
  }

  /// Forget the rows (storage kept) — called after scores are consumed.
  void clear() { count_ = 0; }

  std::size_t capacity_bytes() const {
    return features_.capacity() * sizeof(float) +
           tags_.capacity() * sizeof(std::uint64_t) +
           scores_.capacity() * sizeof(float);
  }

 private:
  std::size_t dim_ = 0;
  std::size_t stride_ = 0;  ///< dim_ rounded up to 16 floats (64 bytes)
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
  float* base_ = nullptr;  ///< 64-byte aligned cursor into features_
  std::vector<float> features_;
  std::vector<std::uint64_t> tags_;
  std::vector<float> scores_;
};

/// Lifetime accounting of one backend instance (relaxed atomics inside, so
/// concurrent engine lanes and hub drains never contend). `capacity_sum`
/// accumulates batch capacities so mean fill = windows / capacity_sum.
struct BackendStats {
  long long batches = 0;       ///< score() calls
  long long windows = 0;       ///< rows scored
  long long capacity_sum = 0;  ///< sum of batch capacities at score() time

  double mean_fill() const {
    return capacity_sum > 0
               ? static_cast<double>(windows) / static_cast<double>(capacity_sum)
               : 0.0;
  }
};

/// The scoring seam. Implementations must be thread-safe (concurrent
/// score() calls on distinct batches) and must score rows independently of
/// one another and of batch composition.
class ScoringBackend {
 public:
  virtual ~ScoringBackend() = default;

  virtual BackendKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  /// Score rows [0, batch.size()): writes batch scores. The model must match
  /// batch.dimension(). May throw (fault site "score.batch", device faults);
  /// the batch's scores are then unspecified and the frame that owns it is
  /// expected to fail upward into the runtime's poison-frame path.
  virtual void score(const svm::LinearModel& model, ScoreBatch& batch) = 0;

  virtual BackendStats stats() const = 0;
};

/// Shared base for real (non-proxy) backends: the "score.batch" fault site
/// plus lock-free stats around a pure virtual kernel.
class BackendBase : public ScoringBackend {
 public:
  void score(const svm::LinearModel& model, ScoreBatch& batch) final;
  BackendStats stats() const override;

 protected:
  virtual void kernel(const svm::LinearModel& model, ScoreBatch& batch) = 0;

 private:
  std::atomic<long long> batches_{0};
  std::atomic<long long> windows_{0};
  std::atomic<long long> capacity_sum_{0};
};

/// Straight port of the pre-backend scan loop: one LinearModel::decision per
/// row, in row order — bit-identical to the historical inline path.
class ScalarBackend final : public BackendBase {
 public:
  BackendKind kind() const override { return BackendKind::kScalar; }

 protected:
  void kernel(const svm::LinearModel& model, ScoreBatch& batch) override;
};

/// Blocked batch kernel: window pairs share one pass over the weight vector
/// (weight reuse) and each accumulation is 4-way unrolled into independent
/// double partials (breaks the FP-add latency chain the scalar loop
/// serializes on). Summation order differs from scalar, so scores agree to
/// bounded ULP, not bitwise — post-NMS boxes are identical (tested).
class BatchBackend final : public BackendBase {
 public:
  BackendKind kind() const override { return BackendKind::kBatch; }

 protected:
  void kernel(const svm::LinearModel& model, ScoreBatch& batch) override;
};

/// Construct a CPU backend. kAuto is resolved first; kHwsim returns nullptr
/// (the offload backend lives in pdet_hwsim — construct it there and pass it
/// down as a shared scorer).
std::unique_ptr<ScoringBackend> make_backend(BackendKind kind);

}  // namespace pdet::score
