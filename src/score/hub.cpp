#include "src/score/hub.hpp"

#include <algorithm>
#include <exception>

#include "src/util/assert.hpp"

namespace pdet::score {

namespace {
/// Most requests one drain trip claims before re-checking the queue. Bounds
/// the latency a parked submitter can see behind a greedy drainer while
/// keeping the weight vector hot across consecutive batches.
constexpr std::size_t kMaxGrab = 8;
}  // namespace

ScoreHub::ScoreHub(ScoringBackend& inner, std::size_t lanes,
                   std::size_t max_pending)
    : inner_(inner), lanes_(lanes == 0 ? 1 : lanes) {
  PDET_REQUIRE(max_pending > 0);
  pending_.reserve(max_pending);
}

void ScoreHub::score(const svm::LinearModel& model, ScoreBatch& batch) {
  if (batch.empty()) return;

  std::unique_lock<std::mutex> lock(mutex_);
  pending_.push_back(Request{&model, &batch, false, nullptr});
  const std::size_t my_index = pending_.size() - 1;
  ++stats_.requests;
  ++outstanding_;

  // Worker-assisted drain: become a drainer unless the lane budget is spent,
  // in which case an active drainer is guaranteed to pick our request up on
  // its next claim (it re-checks the queue under this lock before exiting).
  if (active_drains_ < lanes_) {
    ++active_drains_;
    while (head_ < pending_.size()) {
      const std::size_t begin = head_;
      const std::size_t end =
          std::min(pending_.size(), begin + kMaxGrab);
      head_ = end;
      ++stats_.drains;
      stats_.drained_batches += static_cast<long long>(end - begin);
      stats_.max_coalesced = std::max(
          stats_.max_coalesced, static_cast<long long>(end - begin));

      // Copy the claimed work out: the vector may grow (and move) while the
      // lock is dropped, so raw element references must not cross unlock.
      const svm::LinearModel* models[kMaxGrab];
      ScoreBatch* batches[kMaxGrab];
      std::exception_ptr errors[kMaxGrab];
      const std::size_t n = end - begin;
      for (std::size_t i = 0; i < n; ++i) {
        models[i] = pending_[begin + i].model;
        batches[i] = pending_[begin + i].batch;
      }

      lock.unlock();
      for (std::size_t i = 0; i < n; ++i) {
        try {
          inner_.score(*models[i], *batches[i]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
      lock.lock();

      for (std::size_t i = 0; i < n; ++i) {
        pending_[begin + i].error = std::move(errors[i]);
        pending_[begin + i].done = true;
      }
      cv_.notify_all();
    }
    --active_drains_;
  }

  cv_.wait(lock, [&] { return pending_[my_index].done; });
  std::exception_ptr error = std::move(pending_[my_index].error);

  // Last submitter out resets the ring so indices restart at 0; capacity is
  // kept, so the steady state never reallocates.
  --outstanding_;
  if (outstanding_ == 0 && head_ == pending_.size()) {
    pending_.clear();
    head_ = 0;
  }
  lock.unlock();

  if (error) std::rethrow_exception(error);
}

HubStats ScoreHub::hub_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace pdet::score
