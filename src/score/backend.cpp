#include "src/score/backend.hpp"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#include <immintrin.h>
#endif

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

#include "src/fault/injector.hpp"
#include "src/util/assert.hpp"

namespace pdet::score {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kAuto:
      return "auto";
    case BackendKind::kScalar:
      return "scalar";
    case BackendKind::kBatch:
      return "batch";
    case BackendKind::kHwsim:
      return "hwsim";
  }
  return "unknown";
}

bool parse_backend(std::string_view name, BackendKind& out) {
  if (name == "auto") {
    out = BackendKind::kAuto;
  } else if (name == "scalar") {
    out = BackendKind::kScalar;
  } else if (name == "batch") {
    out = BackendKind::kBatch;
  } else if (name == "hwsim") {
    out = BackendKind::kHwsim;
  } else {
    return false;
  }
  return true;
}

namespace {

// PDET_SCORE_BACKEND applies only to kAuto requests, so a test (or user)
// that pins a backend explicitly is never silently overridden by CI's
// forced-batch matrix entry. Only CPU backends are accepted: hwsim needs a
// constructed device, which an env var cannot conjure.
BackendKind env_default() {
  static const BackendKind cached = [] {
    const char* env = std::getenv("PDET_SCORE_BACKEND");
    if (env == nullptr || *env == '\0') return BackendKind::kScalar;
    BackendKind parsed = BackendKind::kScalar;
    if (parse_backend(env, parsed) && (parsed == BackendKind::kScalar ||
                                       parsed == BackendKind::kBatch)) {
      return parsed;
    }
    std::fprintf(stderr,
                 "pdet: ignoring PDET_SCORE_BACKEND=%s (want scalar|batch)\n",
                 env);
    return BackendKind::kScalar;
  }();
  return cached;
}

}  // namespace

BackendKind resolve(BackendKind requested) {
  return requested == BackendKind::kAuto ? env_default() : requested;
}

// --- ScoreBatch --------------------------------------------------------

namespace {
constexpr std::size_t kRowAlignFloats = 16;  // 64 bytes
}

void ScoreBatch::configure(std::size_t dim, std::size_t capacity) {
  PDET_REQUIRE(dim > 0);
  PDET_REQUIRE(capacity > 0);
  dim_ = dim;
  stride_ = (dim + kRowAlignFloats - 1) / kRowAlignFloats * kRowAlignFloats;
  capacity_ = capacity;
  count_ = 0;
  // Over-allocate by one alignment unit so the first row can be rounded up
  // to a 64-byte boundary regardless of where the vector's storage lands.
  const std::size_t need = stride_ * capacity_ + kRowAlignFloats;
  if (features_.size() < need) features_.resize(need);
  if (tags_.size() < capacity_) tags_.resize(capacity_);
  if (scores_.size() < capacity_) scores_.resize(capacity_);
  auto addr = reinterpret_cast<std::uintptr_t>(features_.data());
  const std::uintptr_t aligned = (addr + 63u) & ~std::uintptr_t{63};
  base_ = features_.data() + (aligned - addr) / sizeof(float);
}

std::span<float> ScoreBatch::push(std::uint64_t tag) {
  PDET_REQUIRE(count_ < capacity_);
  tags_[count_] = tag;
  float* dst = base_ + count_ * stride_;
  ++count_;
  return {dst, dim_};
}

std::span<const float> ScoreBatch::row(std::size_t i) const {
  PDET_REQUIRE(i < count_);
  return {base_ + i * stride_, dim_};
}

// --- BackendBase -------------------------------------------------------

void BackendBase::score(const svm::LinearModel& model, ScoreBatch& batch) {
  PDET_REQUIRE(model.dimension() == batch.dimension());
  if (batch.empty()) return;
  if (fault::check("score.batch").fire) {
    throw std::runtime_error("injected fault: score.batch");
  }
  kernel(model, batch);
  batches_.fetch_add(1, std::memory_order_relaxed);
  windows_.fetch_add(static_cast<long long>(batch.size()),
                     std::memory_order_relaxed);
  capacity_sum_.fetch_add(static_cast<long long>(batch.capacity()),
                          std::memory_order_relaxed);
}

BackendStats BackendBase::stats() const {
  BackendStats out;
  out.batches = batches_.load(std::memory_order_relaxed);
  out.windows = windows_.load(std::memory_order_relaxed);
  out.capacity_sum = capacity_sum_.load(std::memory_order_relaxed);
  return out;
}

// --- ScalarBackend -----------------------------------------------------

void ScalarBackend::kernel(const svm::LinearModel& model, ScoreBatch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch.set_score(i, model.decision(batch.row(i)));
  }
}

// --- BatchBackend ------------------------------------------------------

namespace {

// The kernel bodies live in backend_kernels.inc and are compiled twice:
// once at the build's baseline ISA (portable floor) and — on x86-64 GCC —
// once more under an AVX2+FMA target pragma. pick_kernels() chooses per
// process via CPUID, so the repo builds for the portable baseline yet runs
// the wide-vector copy on hosts that have it. Same source, same fold order
// in both copies: scores stay deterministic on any given machine.
#define PDET_KERNEL_NAME(fn) fn##_base
#include "src/score/backend_kernels.inc"
#undef PDET_KERNEL_NAME

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define PDET_SCORE_AVX2_CLONE 1
#pragma GCC push_options
#pragma GCC target("avx2,fma")
#define PDET_KERNEL_NAME(fn) fn##_avx2
#define PDET_SCORE_KERNEL_AVX2 1
#include "src/score/backend_kernels.inc"
#undef PDET_SCORE_KERNEL_AVX2
#undef PDET_KERNEL_NAME
#pragma GCC pop_options
#endif

using DotFn = float (*)(const float*, const float*, std::size_t, float);
using PairFn = void (*)(const float*, const float*, const float*, std::size_t,
                        float, float*, float*);

struct DotKernels {
  DotFn dot;
  PairFn pair;
};

DotKernels pick_kernels() {
#ifdef PDET_SCORE_AVX2_CLONE
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {dot_unrolled_avx2, dot_pair_avx2};
  }
#endif
  return {dot_unrolled_base, dot_pair_base};
}

const DotKernels& kernels() {
  static const DotKernels picked = pick_kernels();
  return picked;
}

}  // namespace

void BatchBackend::kernel(const svm::LinearModel& model, ScoreBatch& batch) {
  const float* w = model.weights.data();
  const std::size_t n = batch.dimension();
  const std::size_t count = batch.size();
  const DotKernels& k = kernels();
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    float ya = 0.0f, yb = 0.0f;
    k.pair(w, batch.row(i).data(), batch.row(i + 1).data(), n, model.bias,
           &ya, &yb);
    batch.set_score(i, ya);
    batch.set_score(i + 1, yb);
  }
  if (i < count) {
    batch.set_score(i, k.dot(w, batch.row(i).data(), n, model.bias));
  }
}

std::unique_ptr<ScoringBackend> make_backend(BackendKind kind) {
  switch (resolve(kind)) {
    case BackendKind::kScalar:
      return std::make_unique<ScalarBackend>();
    case BackendKind::kBatch:
      return std::make_unique<BatchBackend>();
    default:
      return nullptr;  // hwsim: construct via pdet_hwsim and share it
  }
}

}  // namespace pdet::score
