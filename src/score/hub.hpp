// Cross-stream scoring hub (pdet::score::ScoreHub).
//
// The runtime's biggest untapped throughput lever: with N workers each
// scanning its own stream, scoring requests arrive independently and the
// backend sees N trickles instead of one firehose. ScoreHub sits between
// the engines and a shared inner backend and coalesces those trickles:
//
//   worker 0 ──┐                       ┌─▶ inner.score(batch a)
//   worker 1 ──┤  submit(model,batch)  ├─▶ inner.score(batch b)
//   worker 2 ──┼──▶ pending queue ─────┤        (lanes drains)
//   worker 3 ──┘                       └─▶ ...
//
// Design: worker-assisted draining, not a dedicated scoring thread. A
// submitter parks its request and, if fewer than `lanes` drains are active,
// becomes a drainer itself — grabbing a clump of pending requests (its own
// plus whatever neighbours queued meanwhile) and scoring them back-to-back
// while the lock is dropped. Submitters whose request was picked up by
// another drainer block on the condition variable until their batch is
// marked done: the async completion path. Consequences:
//
//  * lanes >= workers: every submitter drains immediately — pass-through
//    with zero added latency, but back-to-back scoring of neighbour batches
//    (weight vector stays hot in cache) whenever arrivals collide.
//  * lanes == 1: models a single offload device (hwsim). Requests queue,
//    the single active drainer streams them through the device in arrival
//    order, submitters sleep until completion — exactly the accelerator's
//    fill/drain pipeline shape.
//
// Correctness: batches are scored row-independently (ScoringBackend
// contract), each request's scores land only in that request's batch, and a
// submitter does not return until its own batch is done — so per-stream
// results are byte-identical to calling the inner backend directly, at any
// stream count or interleaving. An exception thrown while scoring a batch
// (e.g. the "score.batch" fault site) is captured per-request and rethrown
// in the *owning* submitter, so it poisons only that stream's frame.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "src/score/backend.hpp"

namespace pdet::score {

/// Coalescing accounting across the hub's lifetime.
struct HubStats {
  long long requests = 0;        ///< submitted batches
  long long drains = 0;          ///< drain trips (>=1 request each)
  long long drained_batches = 0; ///< batches scored by drain trips
  long long max_coalesced = 0;   ///< most batches scored in one drain trip

  /// Mean batches per drain trip — >1 means cross-stream coalescing paid.
  double mean_coalesced() const {
    return drains > 0
               ? static_cast<double>(drained_batches) /
                     static_cast<double>(drains)
               : 0.0;
  }
};

class ScoreHub final : public ScoringBackend {
 public:
  /// `lanes` bounds concurrent drains of `inner` (1 = single device). The
  /// hub borrows `inner`; the caller keeps it alive. `max_pending` sizes the
  /// preallocated request ring (steady state allocates nothing); it must be
  /// at least the number of threads that may submit concurrently.
  ScoreHub(ScoringBackend& inner, std::size_t lanes, std::size_t max_pending);

  /// Reports the inner backend's kind: the hub is a routing layer, not a
  /// scoring implementation, and stats dimensions should say what scored.
  BackendKind kind() const override { return inner_.kind(); }

  /// Blocks until `batch` is scored (possibly by another submitter's drain
  /// trip). Rethrows any exception raised while scoring this batch.
  void score(const svm::LinearModel& model, ScoreBatch& batch) override;

  BackendStats stats() const override { return inner_.stats(); }

  HubStats hub_stats() const;

  std::size_t lanes() const { return lanes_; }

 private:
  struct Request {
    const svm::LinearModel* model = nullptr;
    ScoreBatch* batch = nullptr;
    bool done = false;
    std::exception_ptr error;
  };

  ScoringBackend& inner_;
  const std::size_t lanes_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Request> pending_;  ///< reserved ring; [head_, size) waiting
  std::size_t head_ = 0;          ///< first request not yet claimed
  std::size_t active_drains_ = 0;
  std::size_t outstanding_ = 0;   ///< submitters not yet returned
  HubStats stats_;
};

}  // namespace pdet::score
