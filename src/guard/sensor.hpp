// Deterministic sensor-fault model (pdet::guard).
//
// The chaos plane (pdet::fault) covers process and network faults; this
// file models the *input* failing: the camera itself. SensorSimulator sits
// between a frame source and whatever consumes frames, applying seeded
// degradations in place. Each degradation is gated by a named
// fault::Injector site, so the existing Plan machinery (probability, skip,
// max_fires, per-point seeded schedules) composes unchanged — a chaos
// schedule can freeze stream 2 at frame 40 for exactly 6 frames and zero 8
// readout rows with 1% probability, reproducibly.
//
//   sensor.frame.freeze    repeat the previous output frame verbatim
//   sensor.frame.tear      top `param`% rows from the previous frame,
//                          bottom from the current (default 50)
//   sensor.frame.blackout  zero the frame
//   sensor.rows.dead       zero `param` consecutive rows (default 8) at a
//                          seeded position
//   sensor.cols.dead       zero `param` consecutive columns (default 8)
//   sensor.noise.saltpepper set `param` per-mille of pixels (default 50 =
//                          5%) to 0 or 1 at seeded positions
//   sensor.noise.gauss     add gaussian noise, sigma = `param`/100
//                          (default 10 = 0.1), clamped to [0,1]
//   sensor.gain.drift      multiply by `param`/100 gain (default 500 = 5x),
//                          clamped to [0,1] — drives saturation
//
// Every pixel decision (positions, noise values) draws from an Rng seeded
// by (simulator seed, stream, frame_index), so the corruption applied to a
// given frame is a pure function of the plan and that frame's identity —
// independent of thread interleaving across streams and of wall time.
// Freeze and tear repeat the previous *output* frame (what the consumer
// actually saw), matching how a real capture pipeline replays its DMA
// buffer. Per-stream history is preallocated; apply() does not allocate
// once each stream has seen its frame size.
//
// Not thread-safe per stream: one producer per stream, the same contract
// as runtime submit() and FrameGuard.
#pragma once

#include <cstdint>
#include <vector>

#include "src/imgproc/image.hpp"

namespace pdet::guard {

// Which degradations fired on a frame (bitmask returned by apply()).
inline constexpr std::uint32_t kFaultFreeze = 1u << 0;
inline constexpr std::uint32_t kFaultTear = 1u << 1;
inline constexpr std::uint32_t kFaultBlackout = 1u << 2;
inline constexpr std::uint32_t kFaultDeadRows = 1u << 3;
inline constexpr std::uint32_t kFaultDeadCols = 1u << 4;
inline constexpr std::uint32_t kFaultSaltPepper = 1u << 5;
inline constexpr std::uint32_t kFaultGaussNoise = 1u << 6;
inline constexpr std::uint32_t kFaultGainDrift = 1u << 7;

class SensorSimulator {
 public:
  /// `seed` feeds the per-(stream, frame) pixel rng; which frames a fault
  /// fires on is the injector plan's business, not the seed's.
  explicit SensorSimulator(std::uint64_t seed, int max_streams);

  /// Degrade `frame` in place according to the armed injector plan; returns
  /// the mask of faults that fired (0 = clean pass-through). Must be called
  /// with consecutive frame indices per stream for freeze/tear history to
  /// mean anything, but any monotonic sequence is accepted.
  std::uint32_t apply(int stream, std::uint64_t frame_index,
                      imgproc::ImageF& frame);

  /// Drop a stream's retained history (freeze/tear need one prior frame).
  void reset_stream(int stream);

 private:
  struct StreamState {
    imgproc::ImageF prev;  ///< previous *output* frame
    bool have_prev = false;
  };

  std::uint64_t seed_;
  std::vector<StreamState> streams_;
};

}  // namespace pdet::guard
