// Per-stream camera-health state machine (pdet::guard).
//
// One unusable frame is a glitch; a run of them is a failing camera. The
// CameraHealth machine turns the per-frame FrameQuality stream into an
// operator-facing per-camera state:
//
//   kHealthy ──(suspect_after consecutive unusable)──► kSuspect
//   kSuspect ──(quarantine_after consecutive unusable)──► kQuarantined
//   any      ──(recovery_frames consecutive healthy)──► one level down
//
// Recovery is hysteretic and one level at a time, mirroring the runtime's
// worker-watchdog recovery ladder: a quarantined camera must prove
// recovery_frames clean frames to become merely suspect, and the same again
// to be healthy — a flapping sensor cannot oscillate the fleet's routing.
// Degraded (but usable) frames are neutral: they neither extend an unusable
// run nor count as clean.
//
// Deterministic and allocation-free: state is three counters; observe() is
// a pure function of the verdict sequence. Not thread-safe — one machine
// per stream on the submit path, like FrameGuard.
#pragma once

#include <cstdint>

#include "src/guard/gate.hpp"

namespace pdet::guard {

enum class CameraState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kQuarantined = 2,
};

const char* to_string(CameraState s);

struct CameraHealthOptions {
  int suspect_after = 2;     ///< consecutive unusable frames -> kSuspect
  int quarantine_after = 6;  ///< consecutive unusable frames -> kQuarantined
  int recovery_frames = 8;   ///< consecutive healthy frames -> one level down
};

class CameraHealth {
 public:
  explicit CameraHealth(CameraHealthOptions options = {});

  /// Feed one frame's verdict; returns the (possibly changed) state.
  CameraState observe(FrameQuality quality);

  CameraState state() const { return state_; }
  int unusable_run() const { return unusable_run_; }
  int clean_run() const { return clean_run_; }
  const CameraHealthOptions& options() const { return options_; }

 private:
  CameraHealthOptions options_;
  CameraState state_ = CameraState::kHealthy;
  int unusable_run_ = 0;
  int clean_run_ = 0;
};

}  // namespace pdet::guard
