#include "src/guard/health.hpp"

#include "src/util/assert.hpp"

namespace pdet::guard {

const char* to_string(CameraState s) {
  switch (s) {
    case CameraState::kHealthy: return "healthy";
    case CameraState::kSuspect: return "suspect";
    case CameraState::kQuarantined: return "quarantined";
  }
  return "?";
}

CameraHealth::CameraHealth(CameraHealthOptions options) : options_(options) {
  PDET_REQUIRE(options.suspect_after >= 1);
  PDET_REQUIRE(options.quarantine_after >= options.suspect_after);
  PDET_REQUIRE(options.recovery_frames >= 1);
}

CameraState CameraHealth::observe(FrameQuality quality) {
  switch (quality) {
    case FrameQuality::kUnusable:
      clean_run_ = 0;
      ++unusable_run_;
      if (unusable_run_ >= options_.quarantine_after) {
        state_ = CameraState::kQuarantined;
      } else if (unusable_run_ >= options_.suspect_after &&
                 state_ == CameraState::kHealthy) {
        state_ = CameraState::kSuspect;
      }
      break;
    case FrameQuality::kHealthy:
      unusable_run_ = 0;
      if (state_ == CameraState::kHealthy) break;
      if (++clean_run_ >= options_.recovery_frames) {
        clean_run_ = 0;
        state_ = state_ == CameraState::kQuarantined ? CameraState::kSuspect
                                                     : CameraState::kHealthy;
      }
      break;
    case FrameQuality::kDegraded:
      // Neutral: breaks an unusable run without counting toward recovery.
      unusable_run_ = 0;
      clean_run_ = 0;
      break;
  }
  return state_;
}

}  // namespace pdet::guard
