#include "src/guard/sensor.hpp"

#include <algorithm>
#include <cstring>

#include "src/fault/injector.hpp"
#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace pdet::guard {
namespace {

// Independent rng stream per (simulator seed, stream, frame) — the same
// SplitMix-mix idiom dataset::MultiStreamSource uses for frame seeds, so a
// frame's corruption is a pure function of its identity.
std::uint64_t pixel_seed(std::uint64_t seed, int stream,
                         std::uint64_t frame_index) {
  std::uint64_t h = seed;
  h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(stream)) + 1) *
       0x9e3779b97f4a7c15ULL;
  h ^= (frame_index + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

void copy_rows(const imgproc::ImageF& src, imgproc::ImageF& dst, int row_begin,
               int row_end) {
  for (int y = row_begin; y < row_end; ++y) {
    const float* s = src.row(y);
    std::copy(s, s + src.width(), dst.row(y));
  }
}

}  // namespace

SensorSimulator::SensorSimulator(std::uint64_t seed, int max_streams)
    : seed_(seed), streams_(static_cast<std::size_t>(max_streams)) {
  PDET_REQUIRE(max_streams > 0);
}

void SensorSimulator::reset_stream(int stream) {
  PDET_REQUIRE(stream >= 0 &&
               static_cast<std::size_t>(stream) < streams_.size());
  streams_[static_cast<std::size_t>(stream)].have_prev = false;
}

std::uint32_t SensorSimulator::apply(int stream, std::uint64_t frame_index,
                                     imgproc::ImageF& frame) {
  PDET_REQUIRE(stream >= 0 &&
               static_cast<std::size_t>(stream) < streams_.size());
  PDET_REQUIRE(!frame.empty());
  StreamState& state = streams_[static_cast<std::size_t>(stream)];
  const int w = frame.width();
  const int h = frame.height();
  const bool history =
      state.have_prev && state.prev.width() == w && state.prev.height() == h;

  std::uint32_t fired = 0;
  if (fault::armed()) {
    util::Rng rng(pixel_seed(seed_, stream, frame_index));

    // History-dependent faults first: they replace content wholesale, so
    // the additive degradations below land on what the consumer will see.
    if (const auto d = fault::check("sensor.frame.freeze");
        d.fire && history) {
      copy_rows(state.prev, frame, 0, h);
      fired |= kFaultFreeze;
    }
    if (const auto d = fault::check("sensor.frame.tear");
        d.fire && history && (fired & kFaultFreeze) == 0) {
      const std::uint32_t percent = d.param == 0 ? 50 : std::min(d.param, 100u);
      const int split = static_cast<int>(
          static_cast<std::uint64_t>(h) * percent / 100);
      copy_rows(state.prev, frame, 0, split);
      fired |= kFaultTear;
    }
    if (const auto d = fault::check("sensor.frame.blackout"); d.fire) {
      frame.fill(0.0f);
      fired |= kFaultBlackout;
    }
    if (const auto d = fault::check("sensor.rows.dead"); d.fire) {
      const int count =
          std::min(h, d.param == 0 ? 8 : static_cast<int>(d.param));
      const int start = rng.uniform_int(0, h - count);
      for (int y = start; y < start + count; ++y) {
        float* r = frame.row(y);
        std::fill(r, r + w, 0.0f);
      }
      fired |= kFaultDeadRows;
    }
    if (const auto d = fault::check("sensor.cols.dead"); d.fire) {
      const int count =
          std::min(w, d.param == 0 ? 8 : static_cast<int>(d.param));
      const int start = rng.uniform_int(0, w - count);
      for (int y = 0; y < h; ++y) {
        float* r = frame.row(y);
        std::fill(r + start, r + start + count, 0.0f);
      }
      fired |= kFaultDeadCols;
    }
    if (const auto d = fault::check("sensor.noise.saltpepper"); d.fire) {
      const std::uint32_t per_mille = d.param == 0 ? 50 : d.param;
      const auto pixels = frame.pixels();
      const auto hits = static_cast<std::size_t>(
          static_cast<std::uint64_t>(pixels.size()) *
          std::min(per_mille, 1000u) / 1000);
      for (std::size_t i = 0; i < hits; ++i) {
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(pixels.size()) - 1));
        pixels[at] = rng.chance(0.5) ? 0.0f : 1.0f;
      }
      fired |= kFaultSaltPepper;
    }
    if (const auto d = fault::check("sensor.noise.gauss"); d.fire) {
      const double sigma = (d.param == 0 ? 10 : d.param) / 100.0;
      for (float& p : frame.pixels()) {
        p = std::clamp(
            p + static_cast<float>(rng.normal(0.0, sigma)), 0.0f, 1.0f);
      }
      fired |= kFaultGaussNoise;
    }
    if (const auto d = fault::check("sensor.gain.drift"); d.fire) {
      const float gain = static_cast<float>(d.param == 0 ? 500 : d.param) / 100.0f;
      for (float& p : frame.pixels()) {
        p = std::clamp(p * gain, 0.0f, 1.0f);
      }
      fired |= kFaultGainDrift;
    }
  }

  // Retain what the consumer saw — a frozen capture pipeline replays its
  // last *output* buffer, faults and all.
  state.prev.reset(w, h);
  std::copy(frame.pixels().begin(), frame.pixels().end(),
            state.prev.pixels().begin());
  state.have_prev = true;
  return fired;
}

}  // namespace pdet::guard
