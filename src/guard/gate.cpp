#include "src/guard/gate.hpp"

#include <cmath>

#include "src/util/assert.hpp"

namespace pdet::guard {

const char* to_string(FrameQuality q) {
  switch (q) {
    case FrameQuality::kHealthy: return "healthy";
    case FrameQuality::kDegraded: return "degraded";
    case FrameQuality::kUnusable: return "unusable";
  }
  return "?";
}

std::string reasons_to_string(std::uint32_t reasons) {
  if (reasons == 0) return "none";
  static constexpr struct {
    std::uint32_t bit;
    const char* name;
  } kNames[] = {
      {kReasonFrozen, "frozen"},         {kReasonTear, "tear"},
      {kReasonBlackout, "blackout"},     {kReasonOverexposed, "overexposed"},
      {kReasonLowContrast, "low-contrast"},
      {kReasonDeadRows, "dead-rows"},    {kReasonDeadCols, "dead-cols"},
  };
  std::string out;
  for (const auto& n : kNames) {
    if ((reasons & n.bit) == 0) continue;
    if (!out.empty()) out.push_back('|');
    out += n.name;
  }
  return out.empty() ? "none" : out;
}

FrameGuard::FrameGuard(GateOptions options) : options_(options) {
  PDET_REQUIRE(options.min_mean >= 0.0f && options.min_mean < options.max_mean);
  PDET_REQUIRE(options.min_contrast >= 0.0f);
  PDET_REQUIRE(options.degraded_dead_lines >= 1);
  PDET_REQUIRE(options.unusable_dead_lines >= options.degraded_dead_lines);
  PDET_REQUIRE(options.tear_min_changed >= 1);
}

const GuardVerdict& FrameGuard::inspect(const imgproc::ImageF& frame) {
  const int w = frame.width();
  const int h = frame.height();
  PDET_REQUIRE(w > 0 && h > 0);

  verdict_ = GuardVerdict{};

  // --- one pass: row means/variances + column sums --------------------
  const auto uw = static_cast<std::size_t>(w);
  const auto uh = static_cast<std::size_t>(h);
  if (row_mean_.size() < uh) {
    row_mean_.resize(uh);
    row_var_.resize(uh);
  }
  if (col_sum_.size() < uw) {
    col_sum_.resize(uw);
    col_sum2_.resize(uw);
  }
  for (std::size_t x = 0; x < uw; ++x) {
    col_sum_[x] = 0.0;
    col_sum2_[x] = 0.0;
  }
  double total = 0.0;
  double total2 = 0.0;
  for (int y = 0; y < h; ++y) {
    const float* r = frame.row(y);
    double s = 0.0;
    double s2 = 0.0;
    for (int x = 0; x < w; ++x) {
      const double v = r[x];
      s += v;
      s2 += v * v;
      col_sum_[static_cast<std::size_t>(x)] += v;
      col_sum2_[static_cast<std::size_t>(x)] += v * v;
    }
    const double m = s / w;
    row_mean_[static_cast<std::size_t>(y)] = static_cast<float>(m);
    row_var_[static_cast<std::size_t>(y)] =
        static_cast<float>(std::max(0.0, s2 / w - m * m));
    total += s;
    total2 += s2;
  }
  const double n = static_cast<double>(uw) * static_cast<double>(uh);
  const double mean = total / n;
  const double var = std::max(0.0, total2 / n - mean * mean);
  verdict_.mean = static_cast<float>(mean);
  verdict_.contrast = static_cast<float>(std::sqrt(var));

  // --- dead rows / columns --------------------------------------------
  for (int y = 0; y < h; ++y) {
    const auto uy = static_cast<std::size_t>(y);
    if (row_var_[uy] < options_.dead_line_variance &&
        row_mean_[uy] < options_.dead_max_mean) {
      ++verdict_.dead_rows;
    }
  }
  for (int x = 0; x < w; ++x) {
    const auto ux = static_cast<std::size_t>(x);
    const double cm = col_sum_[ux] / h;
    const double cv = std::max(0.0, col_sum2_[ux] / h - cm * cm);
    if (cv < options_.dead_line_variance && cm < options_.dead_max_mean) {
      ++verdict_.dead_cols;
    }
  }

  // --- sample grid vs previous frame (freeze / tear) ------------------
  // Fixed kGrid x kGrid probe positions, proportional across the frame.
  for (int gy = 0; gy < kGrid; ++gy) {
    const int y = (2 * gy + 1) * h / (2 * kGrid);
    const float* r = frame.row(y);
    for (int gx = 0; gx < kGrid; ++gx) {
      const int x = (2 * gx + 1) * w / (2 * kGrid);
      grid_[static_cast<std::size_t>(gy * kGrid + gx)] = r[x];
    }
  }
  bool frozen = false;
  bool tear = false;
  if (have_prev_ && prev_width_ == w && prev_height_ == h) {
    int changed_top = 0;
    int changed_bottom = 0;
    for (int gy = 0; gy < kGrid; ++gy) {
      for (int gx = 0; gx < kGrid; ++gx) {
        const auto i = static_cast<std::size_t>(gy * kGrid + gx);
        if (grid_[i] != prev_grid_[i]) {
          if (gy < kGrid / 2) {
            ++changed_top;
          } else {
            ++changed_bottom;
          }
        }
      }
    }
    frozen = changed_top == 0 && changed_bottom == 0;
    // Tear: the whole top half is a byte-exact replay of the previous frame
    // while the bottom half carries new content. Live frames have per-pixel
    // sensor noise, so an all-identical top half cannot occur naturally.
    tear = !frozen && changed_top == 0 &&
           changed_bottom >= options_.tear_min_changed;
    verdict_.frame_changed = !frozen;
  }
  prev_grid_ = grid_;
  prev_width_ = w;
  prev_height_ = h;
  have_prev_ = true;

  // --- verdict ---------------------------------------------------------
  std::uint32_t reasons = 0;
  if (frozen) reasons |= kReasonFrozen;
  if (tear) reasons |= kReasonTear;
  if (verdict_.mean < options_.min_mean) reasons |= kReasonBlackout;
  if (verdict_.mean > options_.max_mean) reasons |= kReasonOverexposed;
  if (verdict_.contrast < options_.min_contrast) reasons |= kReasonLowContrast;
  const int dead_lines = std::max(verdict_.dead_rows, verdict_.dead_cols);
  if (verdict_.dead_rows >= options_.degraded_dead_lines)
    reasons |= kReasonDeadRows;
  if (verdict_.dead_cols >= options_.degraded_dead_lines)
    reasons |= kReasonDeadCols;
  verdict_.reasons = reasons;

  constexpr std::uint32_t kUnusableMask =
      kReasonFrozen | kReasonTear | kReasonBlackout | kReasonOverexposed |
      kReasonLowContrast;
  if ((reasons & kUnusableMask) != 0 ||
      dead_lines >= options_.unusable_dead_lines) {
    verdict_.quality = FrameQuality::kUnusable;
  } else if (reasons != 0) {
    verdict_.quality = FrameQuality::kDegraded;
  } else {
    verdict_.quality = FrameQuality::kHealthy;
  }
  return verdict_;
}

}  // namespace pdet::guard
