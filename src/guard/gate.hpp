// Frame integrity gate (pdet::guard).
//
// In a driver-assistance deployment the dominant sensor failure is not a
// crashed process but a silently degraded camera: a frozen capture pipeline
// repeating its last frame, dead readout rows, a torn transfer mixing two
// exposures, gain drift saturating the image. A detector fed such frames
// fails *confidently* — it reports "no pedestrian" on pixels that carry no
// information. FrameGuard is the cheap per-stream gate that validates the
// pixels before the engine sees them: one pass over the frame computing
// row/column intensity profiles (dead-line detection), global mean and
// contrast (blackout / saturation), and a sparse sample grid compared
// against the previous frame (freeze / tear detection), emitting a
// FrameQuality verdict with reason flags.
//
// Design constraints, mirroring detect::FrameWorkspace:
//   - zero steady-state allocations: the profile vectors and sample grids
//     are sized on first inspect() and only regrow past the high-water mark;
//   - one gate per stream, called from one thread (the runtime calls it on
//     the submit path, which is single-producer per stream by contract);
//   - deterministic: the verdict is a pure function of (this frame, the
//     previous frame) — no wall clock, no randomness.
//
// Freeze and tear are detected by *exact* sample equality with the previous
// frame. This is deliberate: rendered (and real) frames carry per-pixel
// sensor noise, so two live frames are never bitwise equal — only a capture
// pipeline replaying a buffer produces exact repeats. Threshold-based diffs
// would have to trade false freezes on static scenes against missed slow
// drifts; exact equality sidesteps the trade.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/imgproc/image.hpp"

namespace pdet::guard {

/// Per-frame verdict, ordered by severity (the camera-health machine and
/// stats_merge rely on the ordering).
enum class FrameQuality : std::uint8_t {
  kHealthy = 0,   ///< pixels look live; schedule normally
  kDegraded = 1,  ///< suspicious but usable; schedule, count, watch
  kUnusable = 2,  ///< carries no detection information; do not schedule
};

const char* to_string(FrameQuality q);

// Reason flags (bitmask — one frame can trip several).
inline constexpr std::uint32_t kReasonFrozen = 1u << 0;       ///< exact repeat
inline constexpr std::uint32_t kReasonTear = 1u << 1;         ///< old top, new bottom
inline constexpr std::uint32_t kReasonBlackout = 1u << 2;     ///< mean below floor
inline constexpr std::uint32_t kReasonOverexposed = 1u << 3;  ///< mean above ceiling
inline constexpr std::uint32_t kReasonLowContrast = 1u << 4;  ///< stddev below floor
inline constexpr std::uint32_t kReasonDeadRows = 1u << 5;     ///< constant dark rows
inline constexpr std::uint32_t kReasonDeadCols = 1u << 6;     ///< constant dark cols

/// Render a reason mask as "frozen|dead-rows" (static buffer cycle-free;
/// returns "none" for 0).
std::string reasons_to_string(std::uint32_t reasons);

struct GateOptions {
  /// Blackout / saturation bounds on the global mean (luminance in [0,1]).
  float min_mean = 0.02f;
  float max_mean = 0.98f;
  /// Contrast floor: global standard deviation below this is a flat frame
  /// (fog on the lens, severe gain compression). Rendered street scenes sit
  /// around 0.1–0.2; the floor is an order of magnitude under that.
  float min_contrast = 0.005f;
  /// A row/column is "dead" when its variance is under this AND its mean is
  /// under dead_max_mean — a near-zero constant line. The mean bound keeps a
  /// naturally flat bright sky row from counting.
  float dead_line_variance = 1e-6f;
  float dead_max_mean = 0.02f;
  /// Dead-line verdict ladder: >= degraded_dead_lines flags the reason
  /// (kDegraded), >= unusable_dead_lines makes the frame kUnusable.
  int degraded_dead_lines = 2;
  int unusable_dead_lines = 6;
  /// Tear detection: top-half sample rows all exactly equal to the previous
  /// frame while at least this many bottom-half cells changed.
  int tear_min_changed = 8;
};

/// What inspect() measured, alongside the verdict. POD snapshot — the
/// runtime copies the fields it forwards into StreamResult.
struct GuardVerdict {
  FrameQuality quality = FrameQuality::kHealthy;
  std::uint32_t reasons = 0;
  float mean = 0.0f;
  float contrast = 0.0f;  ///< global standard deviation
  int dead_rows = 0;
  int dead_cols = 0;
  /// False when the frame is an exact repeat of the previous one (at the
  /// sample grid); true for the first frame.
  bool frame_changed = true;
};

class FrameGuard {
 public:
  explicit FrameGuard(GateOptions options = {});

  /// Gate one frame. One pass over the pixels plus a kGrid x kGrid sample
  /// comparison; no allocation once the profile buffers have seen this
  /// frame size. Not thread-safe — one FrameGuard per producer.
  const GuardVerdict& inspect(const imgproc::ImageF& frame);

  const GuardVerdict& last() const { return verdict_; }
  const GateOptions& options() const { return options_; }

  /// Forget the previous-frame sample grid (e.g. after a stream reset);
  /// the next inspect() cannot flag freeze/tear.
  void reset_history() { have_prev_ = false; }

  /// Sample-grid side length: 16x16 = 256 probes regardless of frame size.
  static constexpr int kGrid = 16;

 private:
  GateOptions options_;
  GuardVerdict verdict_;
  // Warm per-frame state (high-water sized, never shrunk).
  std::vector<float> row_mean_;
  std::vector<float> row_var_;
  std::vector<double> col_sum_;
  std::vector<double> col_sum2_;
  std::array<float, kGrid * kGrid> grid_{};
  std::array<float, kGrid * kGrid> prev_grid_{};
  bool have_prev_ = false;
  int prev_width_ = 0;
  int prev_height_ = 0;
};

}  // namespace pdet::guard
