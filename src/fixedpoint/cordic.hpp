// Vectoring-mode CORDIC: magnitude and angle from (fx, fy) with shifts and
// adds only — the standard way FPGA HOG front-ends evaluate the paper's
// Eq. 1 (magnitude) and Eq. 2 (arctan) without multipliers or dividers.
//
// Given a gradient vector, `vectoring` rotates it onto the positive x-axis,
// accumulating the rotation angle; the final x coordinate is the vector
// magnitude scaled by the CORDIC gain K ~ 1.6468 (we pre-divide so callers
// get the true magnitude). The angle is then folded into [0, pi) for
// unsigned HOG orientation binning.
#pragma once

#include <cstdint>

namespace pdet::fixedpoint {

struct CordicResult {
  double magnitude;  ///< |(-x, y)| (gain-compensated)
  double angle;      ///< atan2(y, x) folded to unsigned orientation [0, pi)
};

class Cordic {
 public:
  /// `iterations` trades angle accuracy (~2^-n radians) for modeled latency;
  /// the hardware model uses 12, giving bin-assignment error < 0.03 degrees.
  explicit Cordic(int iterations = 12);

  CordicResult vectoring(double fx, double fy) const;

  int iterations() const { return iterations_; }

  /// Worst-case angle error bound in radians for this iteration count.
  double angle_error_bound() const;

 private:
  int iterations_;
  double inv_gain_;  ///< 1/K for this iteration count
};

}  // namespace pdet::fixedpoint
