#include "src/fixedpoint/shiftadd.hpp"

#include <cmath>

#include "src/util/assert.hpp"

namespace pdet::fixedpoint {

std::vector<CsdTerm> csd_encode(std::int64_t magnitude) {
  PDET_REQUIRE(magnitude >= 0);
  std::vector<CsdTerm> terms;
  // Classic CSD recoding: scan LSB to MSB; a run of ones ...0111 becomes
  // +2^(k+3) - 2^k, halving the expected number of non-zero digits.
  std::int64_t v = magnitude;
  int shift = 0;
  while (v != 0) {
    if (v & 1) {
      // Look at the two low bits to decide digit: if v mod 4 == 3, emit -1
      // and carry; else emit +1.
      if ((v & 3) == 3) {
        terms.push_back({shift, -1});
        v += 1;  // carry
      } else {
        terms.push_back({shift, +1});
        v -= 1;
      }
    }
    v >>= 1;
    ++shift;
  }
  return terms;
}

ShiftAddConstant::ShiftAddConstant(double coefficient, int frac_bits)
    : frac_bits_(frac_bits) {
  PDET_REQUIRE(coefficient >= 0.0 && coefficient < 4.0);
  PDET_REQUIRE(frac_bits >= 1 && frac_bits <= 30);
  const auto raw = static_cast<std::int64_t>(
      std::llround(coefficient * static_cast<double>(std::int64_t{1} << frac_bits)));
  terms_ = csd_encode(raw);
}

std::int64_t ShiftAddConstant::apply_scaled(std::int64_t value) const {
  std::int64_t acc = 0;
  for (const auto& t : terms_) {
    const std::int64_t term = value << t.shift;
    acc += t.sign > 0 ? term : -term;
  }
  return acc;
}

std::int64_t ShiftAddConstant::apply(std::int64_t value) const {
  const std::int64_t scaled = apply_scaled(value);
  // Add half then floor-shift: round-to-nearest for both signs.
  const std::int64_t half = std::int64_t{1} << (frac_bits_ - 1);
  return (scaled + half) >> frac_bits_;
}

double ShiftAddConstant::quantized() const {
  double v = 0.0;
  for (const auto& t : terms_) {
    v += static_cast<double>(t.sign) * std::ldexp(1.0, t.shift);
  }
  return v / static_cast<double>(std::int64_t{1} << frac_bits_);
}

int ShiftAddConstant::adder_count() const {
  return static_cast<int>(terms_.size());
}

}  // namespace pdet::fixedpoint
