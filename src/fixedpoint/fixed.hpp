// Parametric signed fixed-point type Q<IntBits>.<FracBits>.
//
// The hardware model (src/hwsim) computes in fixed point exactly as the
// paper's RTL does: gradients and histogram scores in narrow Q formats,
// normalization and SVM accumulation in wider ones. Fixed<I, F> stores the
// value in a 64-bit raw integer (value = raw / 2^F) and saturates on
// overflow, matching common DSP-slice semantics.
#pragma once

#include <cstdint>
#include <limits>

#include "src/util/assert.hpp"

namespace pdet::fixedpoint {

template <int IntBits, int FracBits>
class Fixed {
  static_assert(IntBits >= 1, "need at least a sign bit");
  static_assert(FracBits >= 0);
  static_assert(IntBits + FracBits <= 48,
                "raw values kept well inside int64 so products cannot wrap");

 public:
  static constexpr int kIntBits = IntBits;
  static constexpr int kFracBits = FracBits;
  static constexpr std::int64_t kOne = std::int64_t{1} << FracBits;
  // Total width counts the sign bit inside IntBits (Q-format convention:
  // Q4.12 spans [-8, 8) with 1/4096 resolution... here IntBits includes sign).
  static constexpr std::int64_t kMaxRaw =
      (std::int64_t{1} << (IntBits + FracBits - 1)) - 1;
  static constexpr std::int64_t kMinRaw =
      -(std::int64_t{1} << (IntBits + FracBits - 1));

  constexpr Fixed() = default;

  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = saturate(raw);
    return f;
  }

  static constexpr Fixed from_double(double v) {
    // Round-to-nearest, like an RTL quantizer with rounding enabled.
    const double scaled = v * static_cast<double>(kOne);
    const std::int64_t raw =
        static_cast<std::int64_t>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
    return from_raw(raw);
  }

  static constexpr Fixed from_int(std::int64_t v) { return from_raw(v << FracBits); }

  constexpr std::int64_t raw() const { return raw_; }
  constexpr double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }
  /// Truncate toward negative infinity (arithmetic shift), as hardware does.
  constexpr std::int64_t to_int() const { return raw_ >> FracBits; }

  static constexpr Fixed max_value() { return from_raw(kMaxRaw); }
  static constexpr Fixed min_value() { return from_raw(kMinRaw); }
  static constexpr double resolution() { return 1.0 / static_cast<double>(kOne); }

  constexpr Fixed operator+(Fixed o) const { return from_raw(raw_ + o.raw_); }
  constexpr Fixed operator-(Fixed o) const { return from_raw(raw_ - o.raw_); }
  constexpr Fixed operator-() const { return from_raw(-raw_); }

  /// Full-precision product (128-bit intermediate, like a DSP slice's wide
  /// accumulator) then round-shift back to F fractional bits.
  constexpr Fixed operator*(Fixed o) const {
    const __int128 prod = static_cast<__int128>(raw_) * o.raw_;
    __int128 rounded = prod;
    if constexpr (FracBits > 0) {
      // Add half then floor-shift: correct round-to-nearest for both signs
      // (the arithmetic shift floors, so subtracting half for negatives
      // would double-round downward).
      const __int128 half = __int128{1} << (FracBits - 1);
      rounded = (prod + half) >> FracBits;
    }
    if (rounded > kMaxRaw) return from_raw(kMaxRaw);
    if (rounded < kMinRaw) return from_raw(kMinRaw);
    return from_raw(static_cast<std::int64_t>(rounded));
  }

  constexpr Fixed operator/(Fixed o) const {
    PDET_REQUIRE(o.raw_ != 0);
    const __int128 num = static_cast<__int128>(raw_) << FracBits;
    const __int128 q = num / o.raw_;
    if (q > kMaxRaw) return from_raw(kMaxRaw);
    if (q < kMinRaw) return from_raw(kMinRaw);
    return from_raw(static_cast<std::int64_t>(q));
  }

  /// Arithmetic shifts — the primitive the shift-and-add scalers are built on.
  constexpr Fixed operator>>(int n) const { return from_raw(raw_ >> n); }
  constexpr Fixed operator<<(int n) const { return from_raw(raw_ << n); }

  constexpr auto operator<=>(const Fixed&) const = default;

 private:
  static constexpr std::int64_t saturate(std::int64_t raw) {
    if (raw > kMaxRaw) return kMaxRaw;
    if (raw < kMinRaw) return kMinRaw;
    return raw;
  }

  std::int64_t raw_ = 0;
};

// Formats used by the hardware model (chosen to mirror typical HOG RTL):
using PixelFx = Fixed<10, 0>;    ///< 9-bit unsigned pixel + sign headroom
using GradFx = Fixed<11, 4>;     ///< centered-difference gradient
using MagFx = Fixed<12, 6>;      ///< gradient magnitude
using AngleFx = Fixed<4, 12>;    ///< angle in radians, [0, pi)
using HistFx = Fixed<16, 8>;     ///< cell-histogram accumulator
using NormFx = Fixed<4, 14>;     ///< normalized block feature, magnitude <= 1
using AccFx = Fixed<20, 14>;     ///< SVM dot-product accumulator

}  // namespace pdet::fixedpoint
