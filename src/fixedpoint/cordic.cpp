#include "src/fixedpoint/cordic.hpp"

#include <cmath>
#include <numbers>

#include "src/util/assert.hpp"

namespace pdet::fixedpoint {
namespace {

// Internal fixed-point scaling for the x/y datapath and the angle
// accumulator. 2^20 keeps twelve iterations of >> within precision while
// the widest intermediate still fits comfortably in int64.
constexpr int kDataFrac = 20;
constexpr int kAngleFrac = 24;
constexpr double kPi = std::numbers::pi;

std::int64_t to_fx(double v, int frac) {
  return static_cast<std::int64_t>(std::llround(v * static_cast<double>(std::int64_t{1} << frac)));
}

double from_fx(std::int64_t v, int frac) {
  return static_cast<double>(v) / static_cast<double>(std::int64_t{1} << frac);
}

}  // namespace

Cordic::Cordic(int iterations) : iterations_(iterations) {
  PDET_REQUIRE(iterations >= 1 && iterations <= 30);
  double gain = 1.0;
  for (int i = 0; i < iterations_; ++i) {
    gain *= std::sqrt(1.0 + std::ldexp(1.0, -2 * i));
  }
  inv_gain_ = 1.0 / gain;
}

double Cordic::angle_error_bound() const {
  // Residual rotation after n iterations is bounded by the last micro-angle.
  return std::atan(std::ldexp(1.0, -(iterations_ - 1)));
}

CordicResult Cordic::vectoring(double fx, double fy) const {
  if (fx == 0.0 && fy == 0.0) return {0.0, 0.0};

  // Unsigned orientation: theta and theta+pi are the same bin, so reflecting
  // the vector through the origin moves it into the x >= 0 half-plane for
  // free (the hardware does this with two sign flips).
  double px = fx;
  double py = fy;
  if (px < 0.0) {
    px = -px;
    py = -py;
  }

  std::int64_t x = to_fx(px, kDataFrac);
  std::int64_t y = to_fx(py, kDataFrac);
  std::int64_t z = 0;  // accumulated angle, Q(kAngleFrac)

  for (int i = 0; i < iterations_; ++i) {
    const std::int64_t atan_i = to_fx(std::atan(std::ldexp(1.0, -i)), kAngleFrac);
    const std::int64_t xs = x >> i;
    const std::int64_t ys = y >> i;
    if (y >= 0) {
      x += ys;
      y -= xs;
      z += atan_i;
    } else {
      x -= ys;
      y += xs;
      z -= atan_i;
    }
  }

  double angle = from_fx(z, kAngleFrac);  // in (-pi/2, pi/2]
  if (angle < 0.0) angle += kPi;          // fold to unsigned [0, pi)
  if (angle >= kPi) angle -= kPi;

  const double magnitude = from_fx(x, kDataFrac) * inv_gain_;
  return {magnitude, angle};
}

}  // namespace pdet::fixedpoint
