// Multiplierless constant multiplication.
//
// The paper implements its feature down-scaling modules "by shift-and-add
// instead of multiplier to keep resource utilization as low as possible"
// (Section 5). This module reproduces that: a constant coefficient in [0, 2)
// is encoded in canonical signed digit (CSD) form — a minimal set of
// +/- power-of-two terms — and applied to integers with shifts and adds only.
// The resource model charges one adder per non-zero CSD digit.
#pragma once

#include <cstdint>
#include <vector>

namespace pdet::fixedpoint {

struct CsdTerm {
  int shift;      ///< power of two (value contribution: sign * 2^-shift... see below)
  int sign;       ///< +1 or -1
};

/// CSD encoding of `coefficient` quantized to `frac_bits` fractional bits.
/// Terms contribute sign * 2^(shift), with shift counted relative to the
/// binary point (shift may be negative => right shifts of the operand).
class ShiftAddConstant {
 public:
  ShiftAddConstant() = default;

  /// coefficient in [0, 4); quantized to 2^-frac_bits.
  ShiftAddConstant(double coefficient, int frac_bits);

  /// Multiply `value` (an integer-valued sample) by the constant, returning
  /// floor of the exact product of value with the quantized coefficient
  /// scaled by 2^frac_bits... concretely: result = value * quantized_raw,
  /// evaluated as shifts and adds, still carrying frac_bits fractional bits.
  std::int64_t apply_scaled(std::int64_t value) const;

  /// Convenience: apply and shift back down (round-to-nearest).
  std::int64_t apply(std::int64_t value) const;

  /// Exact value of the quantized coefficient.
  double quantized() const;

  int adder_count() const;
  const std::vector<CsdTerm>& terms() const { return terms_; }
  int frac_bits() const { return frac_bits_; }

 private:
  std::vector<CsdTerm> terms_;  // shifts relative to scaled (integer) domain
  int frac_bits_ = 0;
};

/// CSD-encode a non-negative integer. Returned digits use `shift` as the bit
/// index (contribution sign * 2^shift). Guaranteed no two adjacent non-zero
/// digits (canonical property).
std::vector<CsdTerm> csd_encode(std::int64_t magnitude);

}  // namespace pdet::fixedpoint
