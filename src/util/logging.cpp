#include "src/util/logging.hpp"

#include <cstdarg>
#include <cstdio>

namespace pdet::util {
namespace {

LogLevel g_level = LogLevel::kInfo;

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level) return;
  std::fprintf(stderr, "[pdet:%s] ", to_string(level).c_str());
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

std::string to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

void log(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

#define PDET_DEFINE_LOG_FN(name, level)      \
  void name(const char* fmt, ...) {          \
    std::va_list args;                       \
    va_start(args, fmt);                     \
    vlog(level, fmt, args);                  \
    va_end(args);                            \
  }

PDET_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
PDET_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
PDET_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
PDET_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef PDET_DEFINE_LOG_FN

}  // namespace pdet::util
