#include "src/util/logging.hpp"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pdet::util {
namespace {

using Clock = std::chrono::steady_clock;

struct LoggerState {
  LogLevel level = LogLevel::kInfo;
  bool env_override = false;
  Clock::time_point epoch = Clock::now();

  LoggerState() {
    // Environment override so examples/benches can be made chatty (or
    // silenced) without a rebuild or a flag on every binary.
    if (const char* env = std::getenv("PDET_LOG_LEVEL")) {
      if (const auto parsed = parse_log_level(env)) {
        level = *parsed;
        env_override = true;
      }
    }
  }
};

LoggerState& state() {
  static LoggerState s;
  return s;
}

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  LoggerState& s = state();
  if (level < s.level) return;
  const double uptime =
      std::chrono::duration<double>(Clock::now() - s.epoch).count();
  // Assemble the whole line and emit it with a single stdio call so lines
  // from concurrent threads (workers, io thread, watchdog) never interleave
  // mid-line. Messages beyond the buffer are truncated, not split.
  char line[1024];
  int n = std::snprintf(line, sizeof(line), "[%10.3f] [pdet:%s] ", uptime,
                        to_string(level).c_str());
  if (n < 0) return;
  if (n < static_cast<int>(sizeof(line)) - 1) {
    const int m = std::vsnprintf(line + n, sizeof(line) - 1 -
                                               static_cast<std::size_t>(n),
                                 fmt, args);
    if (m > 0) n += m;
    n = std::min(n, static_cast<int>(sizeof(line)) - 2);
  }
  line[n] = '\n';
  std::fwrite(line, 1, static_cast<std::size_t>(n) + 1, stderr);
}

}  // namespace

void set_log_level(LogLevel level) { state().level = level; }
LogLevel log_level() { return state().level; }

void set_default_log_level(LogLevel level) {
  if (!state().env_override) state().level = level;
}

double log_uptime_seconds() {
  return std::chrono::duration<double>(Clock::now() - state().epoch).count();
}

std::string to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

void log(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

#define PDET_DEFINE_LOG_FN(name, level)      \
  void name(const char* fmt, ...) {          \
    std::va_list args;                       \
    va_start(args, fmt);                     \
    vlog(level, fmt, args);                  \
    va_end(args);                            \
  }

PDET_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
PDET_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
PDET_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
PDET_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef PDET_DEFINE_LOG_FN

}  // namespace pdet::util
