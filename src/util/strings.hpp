// Small string helpers shared by CLI parsing, table rendering and model I/O.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pdet::util {

/// Split `s` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed precision floating-point rendering ("3.142" for (pi, 3)).
std::string to_fixed(double value, int decimals);

/// Parse helpers returning false (leaving `out` untouched) on bad input.
bool parse_int(std::string_view s, int& out);
bool parse_double(std::string_view s, double& out);

/// Left/right padding to a field width (spaces).
std::string pad_left(std::string s, std::size_t width);
std::string pad_right(std::string s, std::size_t width);

}  // namespace pdet::util
