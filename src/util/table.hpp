// Console table and CSV rendering for experiment output.
//
// The benches print paper-style tables (e.g. Table 1 of the DAC'17 paper) to
// stdout and optionally dump the same rows as CSV for post-processing.
#pragma once

#include <string>
#include <vector>

namespace pdet::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with aligned columns and a separator under the header.
  std::string to_string() const;

  /// Render as RFC-4180-ish CSV (fields containing , or " get quoted).
  std::string to_csv() const;

  /// Write CSV to a file. Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdet::util
