#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "src/util/assert.hpp"
#include "src/util/strings.hpp"

namespace pdet::util {
namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PDET_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  PDET_REQUIRE(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad_right(row[c], widths[c]);
      out += (c + 1 < row.size()) ? "  " : "";
    }
    out += '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += std::string(widths[c], '-');
    out += (c + 1 < header_.size()) ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += csv_escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

bool Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = to_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  std::fclose(f);
  return ok;
}

}  // namespace pdet::util
