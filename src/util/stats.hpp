// Descriptive statistics over samples — used by the eval library and the
// bench harnesses for summarising sweeps.
#pragma once

#include <span>
#include <vector>

namespace pdet::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]. xs need not be sorted.
double percentile(std::span<const double> xs, double p);
double median(std::span<const double> xs);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm): tracks one
/// quantile q in O(1) memory without storing samples. Exact while fewer than
/// six samples have been seen; afterwards the five markers adapt with a
/// piecewise-parabolic update. Accuracy is ample for latency percentiles
/// (the obs histograms report p50/p95/p99 through this).
class StreamingQuantile {
 public:
  /// q in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit StreamingQuantile(double q);

  void add(double x);
  std::size_t count() const { return n_; }

  /// Current estimate; 0 before any sample.
  double value() const;

 private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5];    ///< marker heights (the quantile is heights_[2])
  double positions_[5];  ///< actual marker positions (1-based ranks)
  double desired_[5];    ///< desired marker positions
  double increment_[5];  ///< desired-position increment per sample
};

/// Fixed percentile set over one stream (shared sample feed, one P² marker
/// bank per percentile). Percentiles are given on the [0, 100] scale.
class StreamingPercentiles {
 public:
  explicit StreamingPercentiles(std::vector<double> percentiles);

  void add(double x);
  std::size_t count() const;

  /// Estimate for percentiles()[i].
  double value(std::size_t i) const;
  const std::vector<double>& percentiles() const { return percentiles_; }

 private:
  std::vector<double> percentiles_;
  std::vector<StreamingQuantile> quantiles_;
};

/// Online accumulator (Welford) for streaming statistics.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pdet::util
