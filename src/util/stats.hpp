// Descriptive statistics over samples — used by the eval library and the
// bench harnesses for summarising sweeps.
#pragma once

#include <span>
#include <vector>

namespace pdet::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]. xs need not be sorted.
double percentile(std::span<const double> xs, double p);
double median(std::span<const double> xs);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Online accumulator (Welford) for streaming statistics.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pdet::util
