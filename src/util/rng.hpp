// Deterministic pseudo-random number generation.
//
// Every stochastic component in pdet (dataset synthesis, negative-window
// sampling, SVM trainers) draws from Rng so that tests, benches and the
// reproduced experiments are bit-for-bit repeatable across runs and
// platforms. The generator is SplitMix64: tiny state, passes BigCrush for
// this use, and trivially splittable for independent substreams.
#pragma once

#include <cmath>
#include <cstdint>

#include "src/util/assert.hpp"

namespace pdet::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    PDET_REQUIRE(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    PDET_REQUIRE(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
  }

  /// Standard normal via Box–Muller (one value per call; cache discarded to
  /// keep the stream position a pure function of call count).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Independent child stream (for parallel-safe substreams).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t state_;
};

/// Fisher–Yates shuffle of a random-access container.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  for (std::size_t i = c.size(); i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1));
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace pdet::util
