// Contract-checking macros used across the pdet libraries.
//
// PDET_ASSERT   — internal invariant; compiled out in NDEBUG builds.
// PDET_REQUIRE  — precondition on a public API; always checked. A violated
//                 requirement is a programming error, so it aborts with a
//                 diagnostic rather than throwing (Core Guidelines I.6/E.12).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pdet::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "pdet: %s failed: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace pdet::detail

#define PDET_REQUIRE(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                            \
          : ::pdet::detail::contract_failure("precondition", #expr,        \
                                             __FILE__, __LINE__))

#ifdef NDEBUG
#define PDET_ASSERT(expr) static_cast<void>(0)
#else
#define PDET_ASSERT(expr)                                                   \
  ((expr) ? static_cast<void>(0)                                            \
          : ::pdet::detail::contract_failure("assertion", #expr, __FILE__, \
                                             __LINE__))
#endif
