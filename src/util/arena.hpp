// Fixed-pool block arena (pdet::util).
//
// One up-front slab carved into equal blocks, handed out and returned
// through a LIFO free list — the retroluxury2 rl2_heap discipline applied to
// per-connection I/O buffers: every allocation the router will ever make
// happens in the constructor, so the steady state performs none. Blocks are
// deliberately all one size (a connection's rx or tx buffer); there is no
// splitting, coalescing or growth — exhaustion is a visible, countable
// condition (acquire() returns an empty span) that callers turn into
// admission control, not a hidden malloc.
//
// Single-threaded by design: the shard router owns one arena per io thread.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pdet::util {

class BlockArena {
 public:
  /// Preallocates `blocks` blocks of `block_bytes` each. Both must be >= 1.
  BlockArena(std::size_t block_bytes, std::size_t blocks);

  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;

  /// Hand out one block; empty span when the pool is exhausted (the caller
  /// sheds or refuses — the arena never grows).
  std::span<std::uint8_t> acquire();

  /// Return a block obtained from acquire(). Asserts on a span that is not
  /// block-aligned inside the slab or is already free.
  void release(std::span<std::uint8_t> block);

  std::size_t block_bytes() const { return block_bytes_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return capacity_ - free_.size(); }
  /// Most blocks ever simultaneously out — sizes the pool for the workload.
  std::size_t high_water() const { return high_water_; }

 private:
  std::size_t block_bytes_;
  std::size_t capacity_;
  std::vector<std::uint8_t> slab_;
  std::vector<std::uint32_t> free_;      ///< LIFO free list of block indices
  std::vector<std::uint8_t> acquired_;   ///< per-block out/in flag
  std::size_t high_water_ = 0;
};

}  // namespace pdet::util
