// Minimal persistent worker pool for per-level parallelism (pdet::util).
//
// The paper's hardware processes pyramid levels in independent fixed-buffer
// datapaths; the host-side analogue is a handful of long-lived threads that
// each run whole levels against preallocated workspaces. The pool is
// deliberately tiny: one kind of job (parallel_for over an index range),
// raw function-pointer + context instead of std::function so dispatching a
// job performs no heap allocation, and the calling thread participates in
// the loop so `threads == 1` degenerates to a plain inline for-loop.
//
// The pool makes no fairness or ordering promise — callers that need
// deterministic output must make each index's work independent and merge
// results by index afterwards (what DetectionEngine does per level).
//
// Multiple producer threads may call parallel_for on one pool concurrently
// (e.g. several runtime workers sharing a pool of lanes): jobs are
// serialized through a submission lock, so one job runs at a time and each
// caller blocks until its own job completes. Dispatch remains allocation-
// free. Reentrant submission (a task calling parallel_for on its own pool)
// is still forbidden — it would self-deadlock on the submission lock.
//
// Exceptions: a task that throws does not kill the worker (which would
// std::terminate the process) — the exception is captured, the remaining
// indices of the job still run, and parallel_for rethrows the first
// captured exception on the calling thread once the job has fully drained.
// Pool workers and job state stay valid for the next job either way.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pdet::util {

class ThreadPool {
 public:
  /// A pool of `threads` total lanes: threads-1 workers are spawned, the
  /// caller of parallel_for is the last lane. threads <= 1 spawns nothing.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (spawned workers + the calling thread).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// One unit of work: called as task(ctx, index) for each index in
  /// [0, count). Indices are claimed from a shared atomic counter, so the
  /// assignment of indices to threads is nondeterministic.
  using Task = void (*)(void* ctx, int index);

  /// Run task over [0, count), blocking until every index has completed.
  /// The calling thread executes indices alongside the workers. Safe to call
  /// from multiple threads concurrently (jobs serialize; see header
  /// comment). Not reentrant: task must not call parallel_for on the same
  /// pool. If any index throws, the remaining indices still run, workers
  /// survive, and the first exception is rethrown here after the job drains.
  void parallel_for(int count, Task task, void* ctx);

  /// Total task invocations that have thrown over the pool's lifetime.
  long long task_faults() const {
    return task_faults_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  void run_indices();

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  ///< serializes whole parallel_for invocations
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_ = nullptr;
  void* ctx_ = nullptr;
  int count_ = 0;
  std::atomic<int> next_{0};
  int pending_ = 0;            ///< workers still inside the current job
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  ///< first throw of the current job
  std::atomic<long long> task_faults_{0};
};

}  // namespace pdet::util
