// Bounds-checked little-endian byte-stream codec (pdet::util).
//
// One binary serialization idiom for everything that crosses a durability or
// machine boundary: svm model files (svm/model_io) and the network wire
// protocol (net/wire) encode through the same ByteWriter and decode through
// the same ByteReader, so "does this codec round-trip, reject truncation,
// reject corruption" is tested once.
//
//   ByteWriter  appends to a caller-owned std::vector<uint8_t>; steady-state
//               encodes into a reused buffer perform no allocation once the
//               buffer has reached its high-water capacity (the engine /
//               runtime reuse discipline, applied to serialization).
//   ByteReader  walks a read-only span with a sticky failure flag: any read
//               past the end (or after a failed read) yields zero values and
//               leaves ok() false. Callers decode straight-line and check
//               ok() once at the end — no per-field error plumbing.
//
// Byte order is explicitly little-endian regardless of host (bytes are
// assembled by shifts, with a memcpy fast path on LE hosts for float
// arrays), so files and wire frames are portable across the SoC / host
// boundary the deployment papers describe.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pdet::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/Ethernet one).
/// `seed` chains incremental updates: crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

class ByteWriter {
 public:
  /// Appends to `out` (not cleared: frames can be concatenated). The caller
  /// keeps ownership; the writer must not outlive the vector.
  explicit ByteWriter(std::vector<std::uint8_t>& out)
      : out_(out), start_(out.size()) {}

  /// Bytes appended through this writer (since construction).
  std::size_t written() const { return out_.size() - start_; }
  /// Absolute offset in the underlying vector where the next byte lands.
  std::size_t offset() const { return out_.size(); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);
  /// u32 byte length followed by the raw bytes (no terminator).
  void str(std::string_view s);
  /// Contiguous f32 payload (image pixels, model weights): one append.
  void f32_array(std::span<const float> values);

  /// Overwrite 4 bytes at absolute offset `at` (which must already have been
  /// written) — used to patch a length/CRC field after the payload is known.
  void patch_u32(std::size_t at, std::uint32_t v);

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t start_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// False once any read ran past the end (sticky).
  bool ok() const { return !failed_; }
  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  /// True when every byte was consumed and nothing failed.
  bool exhausted() const { return ok() && pos_ == data_.size(); }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();
  bool skip(std::size_t n);
  /// Fill `dst` exactly; on underflow, fails and leaves `dst` untouched.
  bool bytes(std::span<std::uint8_t> dst);
  /// Counterpart of ByteWriter::str. Fails (returning false, `out`
  /// untouched) when the declared length exceeds `max_len` or the remaining
  /// bytes. On success `out` is assign()ed — reused capacity, no allocation
  /// once warm.
  bool str(std::string& out, std::size_t max_len = 1u << 20);
  /// Fill `dst` with dst.size() little-endian f32 values.
  bool f32_array(std::span<float> dst);

 private:
  bool take(std::size_t n);  ///< advance pos_ or set failed_

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace pdet::util
