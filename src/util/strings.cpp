#include "src/util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pdet::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string to_fixed(double value, int decimals) {
  return format("%.*f", decimals, value);
}

bool parse_int(std::string_view s, int& out) {
  const std::string tmp(trim(s));
  if (tmp.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(tmp.c_str(), &end, 10);
  if (end != tmp.c_str() + tmp.size()) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_double(std::string_view s, double& out) {
  const std::string tmp(trim(s));
  if (tmp.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(tmp.c_str(), &end);
  if (end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace pdet::util
