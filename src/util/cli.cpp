#include "src/util/cli.hpp"

#include <cstdio>

#include "src/util/assert.hpp"
#include "src/util/strings.hpp"

namespace pdet::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_int(const std::string& name, int default_value,
                  const std::string& help) {
  PDET_REQUIRE(find(name) == nullptr);
  options_.push_back({name, Kind::kInt, help, format("%d", default_value)});
}

void Cli::add_double(const std::string& name, double default_value,
                     const std::string& help) {
  PDET_REQUIRE(find(name) == nullptr);
  options_.push_back({name, Kind::kDouble, help, format("%g", default_value)});
}

void Cli::add_string(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  PDET_REQUIRE(find(name) == nullptr);
  options_.push_back({name, Kind::kString, help, default_value});
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  PDET_REQUIRE(find(name) == nullptr);
  options_.push_back({name, Kind::kFlag, help, "false"});
}

const Cli::Option* Cli::find(const std::string& name) const {
  for (const auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

Cli::Option* Cli::find(const std::string& name) {
  return const_cast<Option*>(static_cast<const Cli*>(this)->find(name));
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(),
                   arg.c_str());
      std::fputs(usage().c_str(), stderr);
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Option* opt = find(arg);
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown option '--%s'\n", program_.c_str(),
                   arg.c_str());
      std::fputs(usage().c_str(), stderr);
      return false;
    }
    if (opt->kind == Kind::kFlag) {
      opt->flag_set = true;
      opt->value = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '--%s' needs a value\n",
                     program_.c_str(), arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (opt->kind == Kind::kInt) {
      int parsed = 0;
      if (!parse_int(value, parsed)) {
        std::fprintf(stderr, "%s: bad integer for '--%s': '%s'\n",
                     program_.c_str(), arg.c_str(), value.c_str());
        return false;
      }
    } else if (opt->kind == Kind::kDouble) {
      double parsed = 0;
      if (!parse_double(value, parsed)) {
        std::fprintf(stderr, "%s: bad number for '--%s': '%s'\n",
                     program_.c_str(), arg.c_str(), value.c_str());
        return false;
      }
    }
    opt->value = value;
  }
  return true;
}

int Cli::get_int(const std::string& name) const {
  const Option* opt = find(name);
  PDET_REQUIRE(opt != nullptr && opt->kind == Kind::kInt);
  int v = 0;
  PDET_REQUIRE(parse_int(opt->value, v));
  return v;
}

double Cli::get_double(const std::string& name) const {
  const Option* opt = find(name);
  PDET_REQUIRE(opt != nullptr && opt->kind == Kind::kDouble);
  double v = 0;
  PDET_REQUIRE(parse_double(opt->value, v));
  return v;
}

const std::string& Cli::get_string(const std::string& name) const {
  const Option* opt = find(name);
  PDET_REQUIRE(opt != nullptr && opt->kind == Kind::kString);
  return opt->value;
}

bool Cli::get_flag(const std::string& name) const {
  const Option* opt = find(name);
  PDET_REQUIRE(opt != nullptr && opt->kind == Kind::kFlag);
  return opt->flag_set;
}

std::string Cli::usage() const {
  std::string out = format("usage: %s [options]\n%s\n\noptions:\n",
                           program_.c_str(), description_.c_str());
  for (const auto& opt : options_) {
    const char* kind = "";
    switch (opt.kind) {
      case Kind::kInt: kind = " <int>"; break;
      case Kind::kDouble: kind = " <num>"; break;
      case Kind::kString: kind = " <str>"; break;
      case Kind::kFlag: kind = ""; break;
    }
    out += format("  --%s%s  %s (default: %s)\n", opt.name.c_str(), kind,
                  opt.help.c_str(), opt.value.c_str());
  }
  return out;
}

}  // namespace pdet::util
