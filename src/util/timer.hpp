// Wall-clock timing for the software benches (the hardware numbers come from
// the cycle-level model in src/hwsim, not from host timing).
#pragma once

#include <chrono>

namespace pdet::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pdet::util
