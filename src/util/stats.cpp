#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace pdet::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  PDET_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  PDET_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  PDET_REQUIRE(!xs.empty());
  PDET_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double correlation(std::span<const double> xs, std::span<const double> ys) {
  PDET_REQUIRE(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace pdet::util
