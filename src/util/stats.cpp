#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace pdet::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  PDET_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  PDET_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  PDET_REQUIRE(!xs.empty());
  PDET_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double correlation(std::span<const double> xs, std::span<const double> ys) {
  PDET_REQUIRE(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

StreamingQuantile::StreamingQuantile(double q) : q_(q) {
  PDET_REQUIRE(q > 0.0 && q < 1.0);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increment_[0] = 0.0;
  increment_[1] = q / 2.0;
  increment_[2] = q;
  increment_[3] = (1.0 + q) / 2.0;
  increment_[4] = 1.0;
}

void StreamingQuantile::add(double x) {
  if (n_ < 5) {
    // Bootstrap: collect the first five samples sorted into the markers.
    heights_[n_] = x;
    ++n_;
    std::sort(heights_, heights_ + n_);
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];
  ++n_;

  // Nudge interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction; fall back to linear when it would
      // leave the bracket.
      const double span = positions_[i + 1] - positions_[i - 1];
      const double parabolic =
          heights_[i] +
          sign / span *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double StreamingQuantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ <= 5) {
    // Exact for the samples seen so far (heights_ holds them sorted).
    std::span<const double> seen(heights_, n_);
    return percentile(seen, q_ * 100.0);
  }
  return heights_[2];
}

StreamingPercentiles::StreamingPercentiles(std::vector<double> percentiles)
    : percentiles_(std::move(percentiles)) {
  PDET_REQUIRE(!percentiles_.empty());
  quantiles_.reserve(percentiles_.size());
  for (const double p : percentiles_) {
    PDET_REQUIRE(p > 0.0 && p < 100.0);
    quantiles_.emplace_back(p / 100.0);
  }
}

void StreamingPercentiles::add(double x) {
  for (StreamingQuantile& q : quantiles_) q.add(x);
}

std::size_t StreamingPercentiles::count() const {
  return quantiles_.front().count();
}

double StreamingPercentiles::value(std::size_t i) const {
  PDET_REQUIRE(i < quantiles_.size());
  return quantiles_[i].value();
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace pdet::util
