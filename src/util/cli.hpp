// Tiny declarative command-line parser for the examples and benches.
//
//   util::Cli cli("quickstart", "train and run the detector");
//   cli.add_int("npos", 400, "positive training windows");
//   cli.add_flag("verbose", "chatty output");
//   if (!cli.parse(argc, argv)) return 1;   // prints usage on --help / error
//   int npos = cli.get_int("npos");
#pragma once

#include <string>
#include <vector>

namespace pdet::util {

class Cli {
 public:
  Cli(std::string program, std::string description);

  void add_int(const std::string& name, int default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parse `--name value` / `--name=value` / `--flag`. Returns false (after
  /// printing usage) on unknown options, malformed values, or --help.
  bool parse(int argc, const char* const* argv);

  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    std::string name;
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
    bool flag_set = false;
  };

  const Option* find(const std::string& name) const;
  Option* find(const std::string& name);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

}  // namespace pdet::util
