#include "src/util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "src/util/logging.hpp"

namespace pdet::util {

ThreadPool::ThreadPool(int threads) {
  const int spawn = threads - 1;
  workers_.reserve(spawn > 0 ? static_cast<std::size_t>(spawn) : 0);
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_indices() {
  for (int i = next_.fetch_add(1, std::memory_order_relaxed); i < count_;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    // Contain task exceptions here: an escape would unwind through
    // worker_loop and std::terminate the whole process. The remaining
    // indices still run (partial results beat a wedged job) and the first
    // exception is surfaced to the parallel_for caller.
    try {
      task_(ctx_, i);
    } catch (const std::exception& e) {
      task_faults_.fetch_add(1, std::memory_order_relaxed);
      log_warn("thread_pool: task threw at index %d: %s", i, e.what());
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    } catch (...) {
      task_faults_.fetch_add(1, std::memory_order_relaxed);
      log_warn("thread_pool: task threw non-std exception at index %d", i);
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();

    run_indices();

    lock.lock();
    if (--pending_ == 0) cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(int count, Task task, void* ctx) {
  if (count <= 0) return;
  if (workers_.empty()) {
    // Inline path: same containment semantics as the pooled path — finish
    // every index, then rethrow the first failure.
    std::exception_ptr first;
    for (int i = 0; i < count; ++i) {
      try {
        task(ctx, i);
      } catch (const std::exception& e) {
        task_faults_.fetch_add(1, std::memory_order_relaxed);
        log_warn("thread_pool: task threw at index %d: %s", i, e.what());
        if (!first) first = std::current_exception();
      } catch (...) {
        task_faults_.fetch_add(1, std::memory_order_relaxed);
        log_warn("thread_pool: task threw non-std exception at index %d", i);
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  // One job at a time: a second producer blocks here until the first job's
  // completion wait below has finished and reset the job state.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = task;
    ctx_ = ctx;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
    first_error_ = nullptr;
  }
  cv_start_.notify_all();

  run_indices();

  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
  task_ = nullptr;
  ctx_ = nullptr;
  count_ = 0;
  std::exception_ptr first = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (first) std::rethrow_exception(first);
}

}  // namespace pdet::util
