#include "src/util/thread_pool.hpp"

#include <atomic>

namespace pdet::util {

ThreadPool::ThreadPool(int threads) {
  const int spawn = threads - 1;
  workers_.reserve(spawn > 0 ? static_cast<std::size_t>(spawn) : 0);
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_indices() {
  for (int i = next_.fetch_add(1, std::memory_order_relaxed); i < count_;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    task_(ctx_, i);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();

    run_indices();

    lock.lock();
    if (--pending_ == 0) cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(int count, Task task, void* ctx) {
  if (count <= 0) return;
  if (workers_.empty()) {
    for (int i = 0; i < count; ++i) task(ctx, i);
    return;
  }
  // One job at a time: a second producer blocks here until the first job's
  // completion wait below has finished and reset the job state.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = task;
    ctx_ = ctx;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();

  run_indices();

  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
  task_ = nullptr;
  ctx_ = nullptr;
  count_ = 0;
}

}  // namespace pdet::util
