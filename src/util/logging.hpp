// Minimal leveled logger writing to stderr.
//
// The libraries themselves stay quiet below `warn`; examples and benches may
// raise verbosity for progress reporting. Not thread-safe by design: pdet is
// single-threaded end to end (the paper's parallelism lives in the modeled
// hardware, not host threads).
#pragma once

#include <string>

namespace pdet::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging entry points.
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable level name ("debug", "info", ...).
std::string to_string(LogLevel level);

}  // namespace pdet::util
