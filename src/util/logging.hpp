// Minimal leveled logger writing to stderr.
//
// The libraries themselves stay quiet below `warn`; examples and benches may
// raise verbosity for progress reporting. Each log call writes its formatted
// line with one fwrite, so lines from concurrent threads (runtime workers,
// the net io thread, the watchdog) interleave whole, never mid-line; the
// level switch is a plain int read racily by design (a torn level read only
// mis-filters one message, and levels change at startup in practice).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace pdet::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. The initial level is
/// kInfo, overridable by the PDET_LOG_LEVEL environment variable (values
/// "debug" / "info" / "warn" / "error", read once at first use); an explicit
/// set_log_level always wins thereafter.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Like set_log_level, but defers to a PDET_LOG_LEVEL environment override:
/// the examples/benches use this for their quiet-by-default setting so the
/// env var still works on them without a flag.
void set_default_log_level(LogLevel level);

/// printf-style logging entry points.
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable level name ("debug", "info", ...).
std::string to_string(LogLevel level);

/// Inverse of to_string (case-sensitive); nullopt for unknown names.
/// parse_log_level(to_string(l)) == l for every LogLevel.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Seconds since the logger's monotonic epoch (first log call or level
/// query); the value prefixed to every log line.
double log_uptime_seconds();

}  // namespace pdet::util
