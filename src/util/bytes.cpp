#include "src/util/bytes.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace pdet::util {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

constexpr bool kLittleEndianHost = std::endian::native == std::endian::little;

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
  out_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFFu));
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  out_.insert(out_.end(), p, p + s.size());
}

void ByteWriter::f32_array(std::span<const float> values) {
  if constexpr (kLittleEndianHost) {
    const std::size_t at = out_.size();
    out_.resize(at + values.size() * sizeof(float));
    if (!values.empty()) {
      std::memcpy(out_.data() + at, values.data(),
                  values.size() * sizeof(float));
    }
  } else {
    for (const float v : values) f32(v);
  }
}

void ByteWriter::patch_u32(std::size_t at, std::uint32_t v) {
  out_[at] = static_cast<std::uint8_t>(v & 0xFFu);
  out_[at + 1] = static_cast<std::uint8_t>((v >> 8) & 0xFFu);
  out_[at + 2] = static_cast<std::uint8_t>((v >> 16) & 0xFFu);
  out_[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

bool ByteReader::take(std::size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::size_t at = pos_;
  if (!take(1)) return 0;
  return data_[at];
}

std::uint16_t ByteReader::u16() {
  const std::size_t at = pos_;
  if (!take(2)) return 0;
  return static_cast<std::uint16_t>(data_[at] |
                                    (static_cast<std::uint16_t>(data_[at + 1])
                                     << 8));
}

std::uint32_t ByteReader::u32() {
  const std::size_t at = pos_;
  if (!take(4)) return 0;
  return static_cast<std::uint32_t>(data_[at]) |
         (static_cast<std::uint32_t>(data_[at + 1]) << 8) |
         (static_cast<std::uint32_t>(data_[at + 2]) << 16) |
         (static_cast<std::uint32_t>(data_[at + 3]) << 24);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

float ByteReader::f32() { return std::bit_cast<float>(u32()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

bool ByteReader::skip(std::size_t n) { return take(n); }

bool ByteReader::bytes(std::span<std::uint8_t> dst) {
  const std::size_t at = pos_;
  if (!take(dst.size())) return false;
  if (!dst.empty()) std::memcpy(dst.data(), data_.data() + at, dst.size());
  return true;
}

bool ByteReader::str(std::string& out, std::size_t max_len) {
  const std::uint32_t len = u32();
  if (failed_ || len > max_len) {
    failed_ = true;
    return false;
  }
  const std::size_t at = pos_;
  if (!take(len)) return false;
  out.assign(reinterpret_cast<const char*>(data_.data() + at), len);
  return true;
}

bool ByteReader::f32_array(std::span<float> dst) {
  const std::size_t at = pos_;
  if (!take(dst.size() * sizeof(float))) return false;
  if constexpr (kLittleEndianHost) {
    if (!dst.empty()) {
      std::memcpy(dst.data(), data_.data() + at, dst.size() * sizeof(float));
    }
  } else {
    for (std::size_t i = 0; i < dst.size(); ++i) {
      const std::uint8_t* p = data_.data() + at + i * 4;
      const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
      dst[i] = std::bit_cast<float>(v);
    }
  }
  return true;
}

}  // namespace pdet::util
