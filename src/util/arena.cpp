#include "src/util/arena.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace pdet::util {

BlockArena::BlockArena(std::size_t block_bytes, std::size_t blocks)
    : block_bytes_(block_bytes), capacity_(blocks) {
  PDET_REQUIRE(block_bytes >= 1);
  PDET_REQUIRE(blocks >= 1);
  slab_.resize(block_bytes_ * capacity_);
  free_.reserve(capacity_);
  // LIFO with descending indices so the first acquire() returns block 0 —
  // deterministic layout makes leak triage (which block is still out?) easy.
  for (std::size_t i = capacity_; i-- > 0;) {
    free_.push_back(static_cast<std::uint32_t>(i));
  }
  acquired_.assign(capacity_, 0);
}

std::span<std::uint8_t> BlockArena::acquire() {
  if (free_.empty()) return {};
  const std::uint32_t index = free_.back();
  free_.pop_back();
  acquired_[index] = 1;
  high_water_ = std::max(high_water_, in_use());
  return {slab_.data() + static_cast<std::size_t>(index) * block_bytes_,
          block_bytes_};
}

void BlockArena::release(std::span<std::uint8_t> block) {
  PDET_REQUIRE(block.size() == block_bytes_);
  PDET_REQUIRE(block.data() >= slab_.data());
  const std::size_t offset =
      static_cast<std::size_t>(block.data() - slab_.data());
  PDET_REQUIRE(offset % block_bytes_ == 0);
  const std::size_t index = offset / block_bytes_;
  PDET_REQUIRE(index < capacity_);
  PDET_REQUIRE(acquired_[index] != 0);  // double release
  acquired_[index] = 0;
  free_.push_back(static_cast<std::uint32_t>(index));
}

}  // namespace pdet::util
