// Cycle-driven simulator for the two-phase module protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/module.hpp"

namespace pdet::sim {

class VcdWriter;

class Simulator {
 public:
  /// `clock_hz` is used only for reporting cycle counts as wall time; the
  /// paper's design runs at 125 MHz.
  explicit Simulator(double clock_hz = 125e6);

  /// Register a module. The simulator does not own it; the caller keeps the
  /// modules alive for the simulator's lifetime (they typically live side by
  /// side in an accelerator aggregate).
  void add(Module& module);

  /// Attach a FIFO/register commit hook that runs at every clock edge (used
  /// for channels that are not owned by any single module).
  void add_commit_hook(std::function<void()> hook);

  /// Advance one cycle: eval() all modules, then commit() hooks and modules.
  void step();

  /// Advance n cycles.
  void run(std::uint64_t n);

  /// Advance until `done()` is true or `max_cycles` elapse; returns true if
  /// the predicate fired.
  bool run_until(const std::function<bool()>& done, std::uint64_t max_cycles);

  std::uint64_t cycle() const { return cycle_; }
  double clock_hz() const { return clock_hz_; }
  double elapsed_seconds() const {
    return static_cast<double>(cycle_) / clock_hz_;
  }

  /// Optional VCD tracing; sampled after every commit.
  void set_vcd(VcdWriter* vcd) { vcd_ = vcd; }

 private:
  double clock_hz_;
  std::uint64_t cycle_ = 0;
  std::vector<Module*> modules_;
  std::vector<std::function<void()>> commit_hooks_;
  VcdWriter* vcd_ = nullptr;
};

}  // namespace pdet::sim
