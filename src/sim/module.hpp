// Two-phase clocked module protocol.
//
// The hwsim accelerator model is built from Modules driven by a shared
// Simulator clock. Each cycle runs in two phases, mirroring synchronous RTL:
//
//   eval()   — combinational: read *current* state of registers/FIFOs and
//              stage next-state writes (Reg::write, Fifo::push/pop).
//   commit() — clock edge: all staged writes latch simultaneously.
//
// Because every module sees only pre-edge state during eval(), module
// registration order cannot change behaviour — the property that makes the
// cycle counts reported by hwsim trustworthy.
#pragma once

#include <string>

namespace pdet::sim {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// Combinational phase: read current state, stage writes.
  virtual void eval() = 0;

  /// Clock edge: latch staged writes. Default no-op for pure sinks that only
  /// stage into other components' FIFOs.
  virtual void commit() {}

 private:
  std::string name_;
};

}  // namespace pdet::sim
