#include "src/sim/simulator.hpp"

#include "src/sim/vcd.hpp"
#include "src/util/assert.hpp"

namespace pdet::sim {

Simulator::Simulator(double clock_hz) : clock_hz_(clock_hz) {
  PDET_REQUIRE(clock_hz > 0.0);
}

void Simulator::add(Module& module) { modules_.push_back(&module); }

void Simulator::add_commit_hook(std::function<void()> hook) {
  commit_hooks_.push_back(std::move(hook));
}

void Simulator::step() {
  for (Module* m : modules_) m->eval();
  for (auto& hook : commit_hooks_) hook();
  for (Module* m : modules_) m->commit();
  ++cycle_;
  if (vcd_ != nullptr) vcd_->sample(cycle_);
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool Simulator::run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace pdet::sim
