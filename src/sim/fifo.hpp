// Bounded FIFO channel between clocked modules.
//
// Semantics match a synchronous FIFO with registered occupancy: capacity and
// emptiness observed during eval() reflect the previous clock edge, and all
// pushes/pops staged during eval() take effect together at commit(). A
// producer and consumer may therefore both act in the same cycle without
// order dependence (the consumer sees the pre-edge head even if the producer
// pushes this cycle).
#pragma once

#include <algorithm>
#include <deque>
#include <vector>

#include "src/util/assert.hpp"

namespace pdet::sim {

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity) : capacity_(capacity) {
    PDET_REQUIRE(capacity >= 1);
  }

  // --- eval()-phase queries (pre-edge state) ---
  bool can_push() const { return items_.size() + staged_pushes_.size() < capacity_; }
  bool can_pop() const { return pop_count_ < items_.size(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Peek the element that the next pop() would return.
  const T& front() const {
    PDET_ASSERT(can_pop());
    return items_[pop_count_];
  }

  // --- eval()-phase staged operations ---
  void push(T value) {
    PDET_ASSERT(can_push());
    staged_pushes_.push_back(std::move(value));
  }

  T pop() {
    PDET_ASSERT(can_pop());
    return std::move(items_[pop_count_++]);
  }

  // --- clock edge ---
  void commit() {
    items_.erase(items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(pop_count_));
    pop_count_ = 0;
    for (auto& v : staged_pushes_) items_.push_back(std::move(v));
    staged_pushes_.clear();
  }

  /// High-water mark of post-edge occupancy, for buffer-sizing studies.
  std::size_t max_occupancy() const { return max_occupancy_; }
  void record_occupancy() { max_occupancy_ = std::max(max_occupancy_, items_.size()); }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  std::vector<T> staged_pushes_;
  std::size_t pop_count_ = 0;
  std::size_t max_occupancy_ = 0;
};

}  // namespace pdet::sim
