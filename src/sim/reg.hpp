// Registered state element for the two-phase simulation kernel.
#pragma once

#include <utility>

namespace pdet::sim {

/// A D-flip-flop bank: reads return the value latched at the previous clock
/// edge; write() stages the next value, visible only after commit().
template <typename T>
class Reg {
 public:
  Reg() = default;
  explicit Reg(T reset_value)
      : current_(reset_value), next_(std::move(reset_value)) {}

  const T& get() const { return current_; }
  const T& operator*() const { return current_; }

  void write(T value) {
    next_ = std::move(value);
    dirty_ = true;
  }

  void commit() {
    if (dirty_) {
      current_ = next_;
      dirty_ = false;
    }
  }

 private:
  T current_{};
  T next_{};
  bool dirty_ = false;
};

}  // namespace pdet::sim
