// Value-change-dump tracing for the simulation kernel.
//
// Emits a minimal VCD file (viewable in GTKWave) from integer-valued signal
// probes. Intended for debugging the accelerator model's pipelines, not for
// performance measurement.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pdet::sim {

class VcdWriter {
 public:
  /// Signals must all be added before the first sample() call.
  void add_signal(const std::string& name, int width,
                  std::function<std::uint64_t()> probe);

  /// Sample all probes at time `cycle`, recording changes only.
  void sample(std::uint64_t cycle);

  /// Render the accumulated trace as VCD text.
  std::string render() const;

  /// Write to file; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Signal {
    std::string name;
    int width;
    std::function<std::uint64_t()> probe;
    std::string id;
    std::uint64_t last_value = 0;
    bool has_value = false;
  };
  struct Change {
    std::uint64_t cycle;
    std::size_t signal;
    std::uint64_t value;
  };

  bool sampled_ = false;
  std::vector<Signal> signals_;
  std::vector<Change> changes_;
};

}  // namespace pdet::sim
