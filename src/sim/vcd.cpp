#include "src/sim/vcd.hpp"

#include <cstdio>

#include "src/util/assert.hpp"
#include "src/util/strings.hpp"

namespace pdet::sim {
namespace {

/// VCD identifier codes: printable ASCII starting at '!'.
std::string make_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

std::string to_binary(std::uint64_t value, int width) {
  std::string s(static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i) {
    if ((value >> i) & 1u) s[static_cast<std::size_t>(width - 1 - i)] = '1';
  }
  return s;
}

}  // namespace

void VcdWriter::add_signal(const std::string& name, int width,
                           std::function<std::uint64_t()> probe) {
  PDET_REQUIRE(!sampled_);
  PDET_REQUIRE(width >= 1 && width <= 64);
  Signal s;
  s.name = name;
  s.width = width;
  s.probe = std::move(probe);
  s.id = make_id(signals_.size());
  signals_.push_back(std::move(s));
}

void VcdWriter::sample(std::uint64_t cycle) {
  sampled_ = true;
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    Signal& s = signals_[i];
    const std::uint64_t v = s.probe();
    if (!s.has_value || v != s.last_value) {
      changes_.push_back({cycle, i, v});
      s.last_value = v;
      s.has_value = true;
    }
  }
}

std::string VcdWriter::render() const {
  std::string out;
  out += "$timescale 1ns $end\n$scope module pdet $end\n";
  for (const auto& s : signals_) {
    out += util::format("$var wire %d %s %s $end\n", s.width, s.id.c_str(),
                        s.name.c_str());
  }
  out += "$upscope $end\n$enddefinitions $end\n";
  std::uint64_t current_time = ~std::uint64_t{0};
  for (const auto& c : changes_) {
    if (c.cycle != current_time) {
      out += util::format("#%llu\n", static_cast<unsigned long long>(c.cycle));
      current_time = c.cycle;
    }
    const Signal& s = signals_[c.signal];
    if (s.width == 1) {
      out += util::format("%u%s\n", static_cast<unsigned>(c.value & 1u),
                          s.id.c_str());
    } else {
      out += "b" + to_binary(c.value, s.width) + " " + s.id + "\n";
    }
  }
  return out;
}

bool VcdWriter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = render();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace pdet::sim
