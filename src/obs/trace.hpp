// Scoped tracing spans for the detection pipeline (pdet::obs).
//
// The paper's argument is a latency budget (HDTV classified in 1,200,420
// cycles, < 10 ms at 125 MHz), so the reproduction needs to show where host
// time goes stage by stage. A span marks one pipeline stage:
//
//   void compute(...) {
//     PDET_TRACE_SCOPE("hog/cell_grid");
//     ...
//   }
//
// Spans nest lexically; the recorder keeps them in a process-wide buffer
// (pdet is single-threaded end to end, see logging.hpp) and can export them
// as Chrome/Perfetto trace_event JSON (chrome://tracing, ui.perfetto.dev)
// or as an aggregated per-stage summary table with total/self time.
//
// Cost model: with tracing disabled at runtime (the default) a span is one
// relaxed atomic load and a branch. Defining PDET_OBS_DISABLED (CMake option
// of the same name) compiles spans out entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdet::obs {

/// Runtime switch for span recording. Off by default; enabling mid-run is
/// allowed (spans already open are not recorded).
bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Per-thread mute for the whole obs surface (spans *and* metrics). The
/// trace buffer and metrics registry are deliberately single-threaded;
/// any worker thread that executes instrumented pipeline code — the
/// DetectionEngine's per-level pool, the runtime server's engine workers —
/// holds a ScopedThreadMute for its lifetime so that code stays safe to run
/// concurrently, and the orchestrating thread publishes aggregates instead
/// (the engine's compensating counters, DetectionServer::publish_metrics).
/// This is public API: anything spawning threads around pdet pipeline calls
/// should use it rather than re-inventing the guard. Mutes nest per thread
/// and are independent across threads; a muted thread reads tracing and
/// metrics as disabled.
bool obs_thread_muted();

class ScopedThreadMute {
 public:
  ScopedThreadMute();
  ~ScopedThreadMute();
  ScopedThreadMute(const ScopedThreadMute&) = delete;
  ScopedThreadMute& operator=(const ScopedThreadMute&) = delete;
};

/// One completed (or still-open, dur_ns == 0) span.
struct TraceEvent {
  const char* name;        ///< static string supplied by PDET_TRACE_SCOPE
  int depth;               ///< nesting depth at entry (0 = top level)
  std::uint64_t start_ns;  ///< monotonic, relative to the trace epoch
  std::uint64_t dur_ns;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::size_t index_ = 0;
  bool active_ = false;
};

/// Recorded spans, in start order. Only complete after every ScopedSpan in
/// flight has destructed (dur_ns of open spans reads 0).
const std::vector<TraceEvent>& trace_events();

/// Drop all recorded spans (the capacity/dropped counters reset too).
void clear_trace();

/// Cap on recorded spans; once reached further spans are counted as dropped
/// instead of recorded, so a long run cannot exhaust memory. Default 1<<20.
void set_trace_capacity(std::size_t max_events);
std::uint64_t trace_dropped();

/// Chrome trace_event JSON ("ph":"X" complete events, microsecond units).
/// Loadable in chrome://tracing and ui.perfetto.dev.
std::string trace_to_chrome_json();

/// Aggregated per-stage table: count, total ms, self ms (total minus time in
/// nested spans), mean/min/max ms, sorted by total descending.
std::string trace_summary_text();

/// Per-stage aggregate, exposed for programmatic checks (tests, benches).
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};
std::vector<SpanStats> trace_summary();

}  // namespace pdet::obs

#ifdef PDET_OBS_DISABLED
#define PDET_TRACE_SCOPE(name) \
  do {                         \
  } while (false)
#else
#define PDET_OBS_CONCAT_INNER(a, b) a##b
#define PDET_OBS_CONCAT(a, b) PDET_OBS_CONCAT_INNER(a, b)
#define PDET_TRACE_SCOPE(name) \
  ::pdet::obs::ScopedSpan PDET_OBS_CONCAT(pdet_obs_span_, __LINE__)(name)
#endif
