// Scoped tracing spans for the detection pipeline (pdet::obs).
//
// The paper's argument is a latency budget (HDTV classified in 1,200,420
// cycles, < 10 ms at 125 MHz), so the reproduction needs to show where host
// time goes stage by stage. A span marks one pipeline stage:
//
//   void compute(...) {
//     PDET_TRACE_SCOPE("hog/cell_grid");
//     ...
//   }
//
// Spans nest lexically. The recorder is thread-safe: each recording thread
// appends to its own buffer (registered process-wide on first use, one
// uncontended lock per span), and the export calls merge every thread's
// events into one start-ordered view. pdet stopped being single-threaded in
// PR 2 — engine level lanes, runtime workers, the net io thread and the
// watchdog all execute instrumented code concurrently — so spans carry the
// recording thread's id and the merged export reconstructs per-thread
// nesting. Exports are Chrome/Perfetto trace_event JSON (chrome://tracing,
// ui.perfetto.dev; one timeline row per recording thread) or an aggregated
// per-stage summary table with total/self time.
//
// Cost model: with tracing disabled at runtime (the default) a span is one
// relaxed atomic load and a branch. Defining PDET_OBS_DISABLED (CMake option
// of the same name) compiles spans out entirely; PDET_OBS_FORCE_ENABLED
// flips the runtime default to on (the CI configuration that keeps the
// instrumented path from rotting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdet::obs {

/// Runtime switch for span recording. Off by default (on when built with
/// PDET_OBS_FORCE_ENABLED); enabling mid-run is allowed (spans already open
/// are not recorded).
bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Per-thread opt-out for the whole obs surface (spans *and* metrics).
///
/// Thread model (since the distributed-observability PR): the trace
/// recorder and the metrics registry are thread-safe — any thread may
/// record spans or bump metrics concurrently. ScopedThreadMute is therefore
/// no longer a *safety* requirement; it is a *policy* tool: a thread that
/// holds one reads tracing and metrics as disabled, which keeps deliberately
/// redundant work out of the record. The remaining holders are
///   - detect::DetectionEngine's per-level lanes, whose counters the engine
///     re-publishes as per-frame aggregates (keeping counter totals
///     identical at every --threads setting), and
///   - short-lived helper threads in tests that must not perturb counts.
/// The runtime server's workers and the net service's io thread used to be
/// muted wholesale; they now record freely (per-thread span buffers, merged
/// at export). Mutes nest per thread and are independent across threads.
bool obs_thread_muted();

class ScopedThreadMute {
 public:
  ScopedThreadMute();
  ~ScopedThreadMute();
  ScopedThreadMute(const ScopedThreadMute&) = delete;
  ScopedThreadMute& operator=(const ScopedThreadMute&) = delete;
};

/// One completed (or still-open, dur_ns == 0) span.
struct TraceEvent {
  const char* name;        ///< static string supplied by PDET_TRACE_SCOPE
  std::uint32_t tid;       ///< recording thread (registration order, from 0)
  int depth;               ///< nesting depth at entry (0 = top level)
  std::uint64_t start_ns;  ///< monotonic, relative to the trace epoch
  std::uint64_t dur_ns;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void* buffer_ = nullptr;  ///< recording thread's buffer (type-erased)
  std::uint64_t generation_ = 0;
  std::size_t index_ = 0;
  bool active_ = false;
};

/// Merged snapshot of every thread's recorded spans, ordered by start time
/// (stable, so a parent precedes its children). Spans still open when the
/// snapshot is taken read dur_ns == 0.
std::vector<TraceEvent> trace_events();

/// Drop all recorded spans on every thread (the capacity/dropped counters
/// reset too). Spans open across a clear are discarded, not corrupted.
void clear_trace();

/// Process-wide cap on recorded spans (summed across threads); once reached
/// further spans are counted as dropped instead of recorded, so a long run
/// cannot exhaust memory. Default 1<<20.
void set_trace_capacity(std::size_t max_events);
std::uint64_t trace_dropped();

/// Chrome trace_event JSON ("ph":"X" complete events, microsecond units,
/// one tid row per recording thread). Loadable in chrome://tracing and
/// ui.perfetto.dev.
std::string trace_to_chrome_json();

/// Aggregated per-stage table: count, total ms, self ms (total minus time in
/// nested spans), mean/min/max ms, sorted by total descending.
std::string trace_summary_text();

/// Per-stage aggregate, exposed for programmatic checks (tests, benches).
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};
std::vector<SpanStats> trace_summary();

}  // namespace pdet::obs

#ifdef PDET_OBS_DISABLED
#define PDET_TRACE_SCOPE(name) \
  do {                         \
  } while (false)
#else
#define PDET_OBS_CONCAT_INNER(a, b) a##b
#define PDET_OBS_CONCAT(a, b) PDET_OBS_CONCAT_INNER(a, b)
#define PDET_TRACE_SCOPE(name) \
  ::pdet::obs::ScopedSpan PDET_OBS_CONCAT(pdet_obs_span_, __LINE__)(name)
#endif
