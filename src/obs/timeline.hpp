// Frame timelines and the flight recorder (pdet::obs).
//
// Where spans (trace.hpp) answer "where does host time go per stage,
// aggregated", a FrameTimeline answers "what happened to THIS frame": one
// compact record of wall-clock stamps at every hop of the serving path,
// keyed by the client's frame tag so the journey is reconstructable end to
// end across the wire:
//
//   client_encode ─ client_send ─► service_recv ─ queue_admit ─ schedule
//        ─ engine_start ─ [level 0..k spans] ─ engine_end ─ deliver
//        ─ wire_send ─► client_recv ─ client_decode
//
// Stamps are nanoseconds on obs::timeline_clock — a process-local monotonic
// clock — so stamps from different processes must not be compared directly.
// The wire protocol therefore carries hop *offsets* relative to service
// receive (see net::wire FrameTrace), and the client grafts those onto its
// own clock domain. A stamp of 0 means "hop not reached / not recorded".
//
// The FlightRecorder is the black box for chaos runs: a fixed-size ring of
// the last N timelines per stream, preallocated at attach time so steady-
// state recording is a copy under a per-stream lock — no allocation, no
// global contention. The runtime server dumps it (Chrome trace JSON + text)
// when a poison frame fires, a worker is quarantined, or health leaves
// healthy.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pdet::obs {

/// Nanoseconds on the process-local monotonic timeline clock (steady_clock
/// since an arbitrary process epoch). Comparable within one process only;
/// never 0 for a real stamp.
std::uint64_t timeline_now_ns();

/// Maximum pyramid levels recorded per frame (beyond that, the remainder is
/// folded into the last slot — the serving rungs use far fewer levels).
inline constexpr std::size_t kTimelineMaxLevels = 12;

/// One frame's journey. POD, fixed size, copyable with memcpy semantics.
struct FrameTimeline {
  std::uint64_t trace_id = 0;   ///< client frame tag (wire tag), 0 = local
  int stream = -1;              ///< server-side stream id
  std::uint64_t sequence = 0;   ///< per-stream submit sequence
  std::uint8_t status = 0;      ///< runtime::FrameStatus as int
  std::uint8_t degrade_level = 0;  ///< scheduler rung chosen (3 = skip)
  std::uint8_t level_count = 0;    ///< pyramid levels actually timed
  // Tiled-path hop (pdet::tile): how many tiles the scheduler planned for
  // this frame and how many were freshly detected (the rest served their
  // cached detections). 0/0 = frame took the untiled path. Local-only fields:
  // the v3 wire protocol does not carry them, so remotely grafted timelines
  // decode with both at 0.
  std::uint8_t tiles_planned = 0;
  std::uint8_t tiles_detected = 0;
  // Input-integrity verdict (pdet::guard): guard::FrameQuality and
  // guard::CameraState as ints (obs cannot depend on guard — same rule as
  // `status` above). 0/0 = healthy or gate disabled. Carried on the wire
  // from protocol v5.
  std::uint8_t input_quality = 0;
  std::uint8_t camera_state = 0;

  // Hop stamps, timeline_now_ns() domain; 0 = hop not reached. The client_*
  // and wire-recv stamps only exist in the client process (grafted from wire
  // offsets); the server's recorder fills service_recv..wire_send.
  std::uint64_t client_encode_ns = 0;  ///< client: frame encoded for wire
  std::uint64_t service_recv_ns = 0;   ///< server io thread decoded submit
  std::uint64_t gate_ns = 0;           ///< frame-integrity gate verdict
  std::uint64_t queue_admit_ns = 0;    ///< accepted into the bounded queue
  std::uint64_t schedule_ns = 0;       ///< worker consulted the scheduler
  std::uint64_t engine_start_ns = 0;   ///< detect::process() entered
  std::uint64_t engine_end_ns = 0;     ///< detect::process() returned
  std::uint64_t deliver_ns = 0;        ///< in-order delivery callback fired
  std::uint64_t wire_send_ns = 0;      ///< result encoded onto the wire
  std::uint64_t client_decode_ns = 0;  ///< client decoded the result

  /// Per-pyramid-level engine time, microseconds (level_count entries).
  std::array<std::uint32_t, kTimelineMaxLevels> level_us{};
};

/// Fixed-capacity ring of the last N timelines for one stream.
class TimelineRing {
 public:
  explicit TimelineRing(std::size_t capacity);

  /// Copy one timeline in (overwrites the oldest once full). No allocation.
  void record(const FrameTimeline& t);

  std::size_t size() const;
  std::uint64_t total_recorded() const;

  /// Oldest-first snapshot of the retained timelines.
  std::vector<FrameTimeline> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<FrameTimeline> slots_;
  std::size_t head_ = 0;   ///< next write position
  std::size_t count_ = 0;  ///< retained (<= capacity)
  std::uint64_t total_ = 0;
};

/// Per-stream flight recorder: attach_stream() preallocates each ring, then
/// record() is lock-per-stream and allocation-free. Dumps merge every
/// stream's retained timelines.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t depth_per_stream = 64);

  /// Preallocate the ring for `stream` (idempotent; call before record()).
  void attach_stream(int stream, std::string name);

  /// Record a completed frame. Unknown streams are counted as dropped
  /// rather than attached mid-flight (attach allocates).
  void record(const FrameTimeline& t);

  std::size_t depth_per_stream() const { return depth_; }
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

  /// All retained timelines, stream-major, oldest first within a stream.
  std::vector<FrameTimeline> snapshot() const;

  /// Chrome trace_event JSON: one pid per stream, hops as "X" slices on
  /// per-hop tid rows, so one frame reads as a cascade. Uses the timelines'
  /// own clock domain (microseconds).
  std::string to_chrome_json() const;

  /// Human-readable dump: one line per frame with per-hop durations in ms.
  std::string to_text() const;

 private:
  struct StreamRing {
    int stream = -1;
    std::string name;
    TimelineRing ring;
    StreamRing(int s, std::string n, std::size_t depth)
        : stream(s), name(std::move(n)), ring(depth) {}
  };

  StreamRing* find(int stream);

  std::size_t depth_;
  mutable std::mutex attach_mutex_;  ///< guards rings_ growth only
  std::vector<std::unique_ptr<StreamRing>> rings_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Hop durations of one timeline, derived from the stamps (ms; 0 when either
/// end is missing). Shared by the text dump, the telemetry percentiles and
/// the client's display.
struct TimelineBreakdown {
  double ingress_ms = 0.0;   ///< client encode -> service recv (client only)
  double gate_ms = 0.0;      ///< service recv -> integrity-gate verdict
  double admit_ms = 0.0;     ///< service recv -> queue admit
  double queue_ms = 0.0;     ///< queue admit -> schedule
  double engine_ms = 0.0;    ///< engine start -> end
  double deliver_ms = 0.0;   ///< engine end -> deliver
  double egress_ms = 0.0;    ///< deliver -> wire send
  double return_ms = 0.0;    ///< wire send -> client decode (client only)
  double total_ms = 0.0;     ///< first to last recorded stamp
};
TimelineBreakdown breakdown(const FrameTimeline& t);

/// One-line human rendering of a timeline ("tag=12 stream=0 seq=12 ok rung0
/// admit=0.01ms queue=0.52ms engine=3.1ms ..."); used by dumps and clients.
std::string to_line(const FrameTimeline& t);

}  // namespace pdet::obs
