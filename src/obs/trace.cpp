#include "src/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace pdet::obs {
namespace {

using Clock = std::chrono::steady_clock;

#ifdef PDET_OBS_FORCE_ENABLED
constexpr bool kObsDefaultOn = true;
#else
constexpr bool kObsDefaultOn = false;
#endif

std::atomic<bool> g_tracing{kObsDefaultOn};
thread_local int g_mute_depth = 0;

// Each recording thread owns one ThreadBuffer, registered process-wide on
// first span. The buffer's mutex is only ever contended by export/clear
// (record is single-writer), so the per-span cost is an uncontended lock.
// The registry holds shared_ptrs so buffers of exited threads stay readable.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  int depth = 0;
  std::uint64_t generation = 0;  ///< bumped by clear_trace(); guards dtors
  std::uint32_t tid = 0;
};

struct TraceState {
  std::mutex registry_mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<std::size_t> total_events{0};  ///< summed across buffers
  std::atomic<std::size_t> capacity{std::size_t{1} << 20};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::int64_t> epoch_ns{
      Clock::now().time_since_epoch().count()};
};

TraceState& state() {
  static TraceState* s = new TraceState;  // leaked: outlive thread dtors
  return *s;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> tls = [] {
    auto buf = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.registry_mutex);
    buf->tid = static_cast<std::uint32_t>(s.buffers.size());
    s.buffers.push_back(buf);
    return buf;
  }();
  return *tls;
}

std::uint64_t now_ns() {
  const std::int64_t now = Clock::now().time_since_epoch().count();
  const std::int64_t epoch = state().epoch_ns.load(std::memory_order_relaxed);
  return now > epoch ? static_cast<std::uint64_t>(now - epoch) : 0;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += util::format("\\u%04x", static_cast<unsigned>(c));
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

bool tracing_enabled() {
  return g_tracing.load(std::memory_order_relaxed) && g_mute_depth == 0;
}
void set_tracing_enabled(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}

bool obs_thread_muted() { return g_mute_depth > 0; }
ScopedThreadMute::ScopedThreadMute() { ++g_mute_depth; }
ScopedThreadMute::~ScopedThreadMute() { --g_mute_depth; }

ScopedSpan::ScopedSpan(const char* name) {
  if (!tracing_enabled()) return;
  TraceState& s = state();
  // Reserve a slot in the process-wide budget before touching the buffer so
  // the cap is exact even with many threads racing it.
  if (s.total_events.fetch_add(1, std::memory_order_relaxed) >=
      s.capacity.load(std::memory_order_relaxed)) {
    s.total_events.fetch_sub(1, std::memory_order_relaxed);
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ThreadBuffer& buf = thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(TraceEvent{name, buf.tid, buf.depth++, now_ns(), 0});
  buffer_ = &buf;
  generation_ = buf.generation;
  index_ = buf.events.size() - 1;
  active_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  ThreadBuffer& buf = *static_cast<ThreadBuffer*>(buffer_);
  std::lock_guard<std::mutex> lock(buf.mutex);
  // A clear_trace() between open and close discarded this span (and reset
  // the depth counter); the stale index must not be written through.
  if (buf.generation != generation_) return;
  TraceEvent& ev = buf.events[index_];
  ev.dur_ns = now_ns() - ev.start_ns;
  --buf.depth;
}

std::vector<TraceEvent> trace_events() {
  TraceState& s = state();
  std::lock_guard<std::mutex> registry_lock(s.registry_mutex);
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const auto& buf : s.buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    total += buf->events.size();
  }
  merged.reserve(total);
  for (const auto& buf : s.buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    merged.insert(merged.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return merged;
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> registry_lock(s.registry_mutex);
  for (const auto& buf : s.buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    buf->events.clear();
    buf->depth = 0;
    ++buf->generation;
  }
  s.total_events.store(0, std::memory_order_relaxed);
  s.dropped.store(0, std::memory_order_relaxed);
  s.epoch_ns.store(Clock::now().time_since_epoch().count(),
                   std::memory_order_relaxed);
}

void set_trace_capacity(std::size_t max_events) {
  state().capacity.store(max_events, std::memory_order_relaxed);
}

std::uint64_t trace_dropped() {
  return state().dropped.load(std::memory_order_relaxed);
}

std::string trace_to_chrome_json() {
  const std::vector<TraceEvent> events = trace_events();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, ev.name);
    // ts/dur are microseconds (the trace_event spec's unit), as decimals so
    // sub-microsecond spans stay visible. One tid row per recording thread.
    out += util::format(
        "\",\"cat\":\"pdet\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":%u}",
        static_cast<double>(ev.start_ns) / 1e3,
        static_cast<double>(ev.dur_ns) / 1e3, static_cast<unsigned>(ev.tid));
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::vector<SpanStats> trace_summary() {
  const std::vector<TraceEvent> events = trace_events();
  // Self time = total minus directly nested child time. Nesting is a
  // per-thread property, so each tid gets its own interval stack; the merged
  // start-ordered view interleaves threads but never their scopes.
  std::vector<double> child_ms(events.size(), 0.0);
  std::map<std::uint32_t, std::vector<std::size_t>> stacks;
  std::map<std::string, SpanStats> by_name;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    std::vector<std::size_t>& stack = stacks[ev.tid];
    while (!stack.empty()) {
      const TraceEvent& top = events[stack.back()];
      if (ev.start_ns >= top.start_ns + top.dur_ns) {
        stack.pop_back();
      } else {
        break;
      }
    }
    const double dur_ms = static_cast<double>(ev.dur_ns) / 1e6;
    if (!stack.empty()) child_ms[stack.back()] += dur_ms;
    stack.push_back(i);

    SpanStats& s = by_name[ev.name];
    if (s.count == 0) {
      s.name = ev.name;
      s.min_ms = s.max_ms = dur_ms;
    } else {
      s.min_ms = std::min(s.min_ms, dur_ms);
      s.max_ms = std::max(s.max_ms, dur_ms);
    }
    ++s.count;
    s.total_ms += dur_ms;
  }
  // Self time: total minus the duration of directly nested spans.
  for (std::size_t i = 0; i < events.size(); ++i) {
    by_name[events[i].name].self_ms +=
        static_cast<double>(events[i].dur_ns) / 1e6 - child_ms[i];
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, s] : by_name) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

std::string trace_summary_text() {
  const std::vector<SpanStats> stats = trace_summary();
  util::Table table(
      {"span", "count", "total ms", "self ms", "mean ms", "min ms", "max ms"});
  for (const SpanStats& s : stats) {
    table.add_row({s.name,
                   util::format("%llu", static_cast<unsigned long long>(s.count)),
                   util::to_fixed(s.total_ms, 3), util::to_fixed(s.self_ms, 3),
                   util::to_fixed(s.total_ms / static_cast<double>(s.count), 3),
                   util::to_fixed(s.min_ms, 3), util::to_fixed(s.max_ms, 3)});
  }
  std::string out = table.to_string();
  const std::uint64_t dropped = trace_dropped();
  if (dropped > 0) {
    out += util::format("(%llu spans dropped at the trace capacity)\n",
                        static_cast<unsigned long long>(dropped));
  }
  return out;
}

}  // namespace pdet::obs
