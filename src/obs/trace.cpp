#include "src/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>

#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace pdet::obs {
namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_tracing{false};
thread_local int g_mute_depth = 0;

struct TraceBuffer {
  std::vector<TraceEvent> events;
  std::size_t capacity = std::size_t{1} << 20;
  std::uint64_t dropped = 0;
  int depth = 0;
  Clock::time_point epoch = Clock::now();
};

TraceBuffer& buffer() {
  static TraceBuffer buf;
  return buf;
}

std::uint64_t now_ns(const TraceBuffer& buf) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           buf.epoch)
          .count());
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += util::format("\\u%04x", static_cast<unsigned>(c));
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

bool tracing_enabled() {
  return g_tracing.load(std::memory_order_relaxed) && g_mute_depth == 0;
}
void set_tracing_enabled(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}

bool obs_thread_muted() { return g_mute_depth > 0; }
ScopedThreadMute::ScopedThreadMute() { ++g_mute_depth; }
ScopedThreadMute::~ScopedThreadMute() { --g_mute_depth; }

ScopedSpan::ScopedSpan(const char* name) {
  if (!tracing_enabled()) return;
  TraceBuffer& buf = buffer();
  if (buf.events.size() >= buf.capacity) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(TraceEvent{name, buf.depth++, now_ns(buf), 0});
  index_ = buf.events.size() - 1;
  active_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceBuffer& buf = buffer();
  TraceEvent& ev = buf.events[index_];
  ev.dur_ns = now_ns(buf) - ev.start_ns;
  --buf.depth;
}

const std::vector<TraceEvent>& trace_events() { return buffer().events; }

void clear_trace() {
  TraceBuffer& buf = buffer();
  buf.events.clear();
  buf.dropped = 0;
  buf.depth = 0;
  buf.epoch = Clock::now();
}

void set_trace_capacity(std::size_t max_events) {
  buffer().capacity = max_events;
}

std::uint64_t trace_dropped() { return buffer().dropped; }

std::string trace_to_chrome_json() {
  const auto& events = buffer().events;
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, ev.name);
    // ts/dur are microseconds (the trace_event spec's unit), as decimals so
    // sub-microsecond spans stay visible.
    out += util::format(
        "\",\"cat\":\"pdet\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":1}",
        static_cast<double>(ev.start_ns) / 1e3,
        static_cast<double>(ev.dur_ns) / 1e3);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::vector<SpanStats> trace_summary() {
  const auto& events = buffer().events;
  // Child time per event, to derive self time. Events are stored in start
  // order and nest strictly (single-threaded scopes), so a stack of open
  // intervals recovers the parent of each span.
  std::vector<double> child_ms(events.size(), 0.0);
  std::vector<std::size_t> stack;
  std::map<std::string, SpanStats> by_name;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    while (!stack.empty()) {
      const TraceEvent& top = events[stack.back()];
      if (ev.start_ns >= top.start_ns + top.dur_ns) {
        stack.pop_back();
      } else {
        break;
      }
    }
    const double dur_ms = static_cast<double>(ev.dur_ns) / 1e6;
    if (!stack.empty()) child_ms[stack.back()] += dur_ms;
    stack.push_back(i);

    SpanStats& s = by_name[ev.name];
    if (s.count == 0) {
      s.name = ev.name;
      s.min_ms = s.max_ms = dur_ms;
    } else {
      s.min_ms = std::min(s.min_ms, dur_ms);
      s.max_ms = std::max(s.max_ms, dur_ms);
    }
    ++s.count;
    s.total_ms += dur_ms;
  }
  // Self time: total minus the duration of directly nested spans.
  for (std::size_t i = 0; i < events.size(); ++i) {
    by_name[events[i].name].self_ms +=
        static_cast<double>(events[i].dur_ns) / 1e6 - child_ms[i];
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, s] : by_name) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

std::string trace_summary_text() {
  const std::vector<SpanStats> stats = trace_summary();
  util::Table table(
      {"span", "count", "total ms", "self ms", "mean ms", "min ms", "max ms"});
  for (const SpanStats& s : stats) {
    table.add_row({s.name,
                   util::format("%llu", static_cast<unsigned long long>(s.count)),
                   util::to_fixed(s.total_ms, 3), util::to_fixed(s.self_ms, 3),
                   util::to_fixed(s.total_ms / static_cast<double>(s.count), 3),
                   util::to_fixed(s.min_ms, 3), util::to_fixed(s.max_ms, 3)});
  }
  std::string out = table.to_string();
  const std::uint64_t dropped = trace_dropped();
  if (dropped > 0) {
    out += util::format("(%llu spans dropped at the trace capacity)\n",
                        static_cast<unsigned long long>(dropped));
  }
  return out;
}

}  // namespace pdet::obs
