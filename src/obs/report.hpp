// Observability wiring for the example/bench binaries.
//
//   util::Cli cli("das_video", "...");
//   obs::add_cli_options(cli);
//   if (!cli.parse(argc, argv)) return 1;
//   obs::configure_from_cli(cli);      // enables tracing/metrics as asked
//   ... run ...
//   obs::report_from_cli(cli);         // writes --trace-out, prints --metrics
//
// Flags added: --trace-out FILE (Chrome trace_event JSON + per-stage summary
// table), --metrics (print counter/gauge/histogram report), --metrics-out
// FILE (write the same report as JSON).
#pragma once

#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/cli.hpp"

namespace pdet::obs {

void add_cli_options(util::Cli& cli);

/// Enable tracing/metrics per the parsed flags. Returns true when any
/// observability output was requested.
bool configure_from_cli(const util::Cli& cli);

/// Emit the requested outputs (trace file, summary table, metrics report).
/// Returns false if a requested file could not be written.
bool report_from_cli(const util::Cli& cli);

/// Write `contents` to `path` atomically enough for reports (truncate +
/// write + close, diagnostics logged on failure).
bool write_file(const std::string& path, const std::string& contents);

}  // namespace pdet::obs
