// Global metrics registry (pdet::obs): named counters, gauges and
// fixed-bucket latency histograms, exportable as JSON, text tables, and
// Prometheus text exposition (the telemetry plane's wire payload).
//
// Naming convention is dotted namespaces mirroring the source tree:
//   detect.windows_evaluated   counter   windows scored this run
//   detect.frame_ms            histogram per-frame detect latency
//   hwsim.cycles.classifier_frame  gauge  modeled classifier cycles
// so host-time measurements and the hardware cycle model line up in one
// report (the paper's Table 2 / Section 5 view). The Prometheus export maps
// dots to underscores and prefixes `pdet_` (detect.frame_ms →
// pdet_detect_frame_ms) to satisfy the exposition-format name charset.
//
// Thread model: the registry and every histogram are internally locked — any
// thread may record concurrently, and exports snapshot under the same locks.
// The free helpers (counter_add, gauge_set, observe) are the instrumentation
// surface: they no-op unless metrics_enabled() (which per-thread mutes turn
// off, see ScopedThreadMute), and compile out entirely under
// PDET_OBS_DISABLED. Call sites on hot paths should still aggregate locally
// and publish once per level/frame — the registry is a string-keyed map
// behind a mutex, not a per-window facility.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/stats.hpp"

namespace pdet::obs {

/// Runtime switch for metric collection. Off by default (on when built with
/// PDET_OBS_FORCE_ENABLED).
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;          ///< inclusive upper bucket edges
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
};

/// Fixed-bucket histogram with streaming p50/p95/p99 (util::StreamingQuantile
/// under the hood, so no samples are retained). Internally locked: record()
/// and summary() are safe from any thread, so references handed out by
/// Registry::histogram() stay usable concurrently.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value);
  HistogramSummary summary() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  util::Accumulator acc_;
  util::StreamingPercentiles percentiles_{{50.0, 95.0, 99.0}};
};

/// Default histogram bounds: exponential milliseconds 0.1 .. ~3200.
std::span<const double> default_latency_bounds_ms();

class Registry {
 public:
  static Registry& instance();

  void counter_add(std::string_view name, long long delta);
  void gauge_set(std::string_view name, double value);
  /// Finds or creates the histogram (bounds apply on first touch only). The
  /// reference stays valid for the registry's lifetime (reset() excepted)
  /// and is safe to record through from any thread.
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = {});
  void observe(std::string_view name, double value);

  /// Lookup; counters read 0 / gauges read 0.0 when never touched.
  long long counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  bool has_histogram(std::string_view name) const;

  /// Drop every metric (tests and repeated bench runs). Invalidates
  /// references returned by histogram() — do not call while another thread
  /// still records through one.
  void reset();

  /// Deterministic exports: keys sorted, fixed float formatting.
  std::string to_json() const;
  std::string to_text() const;
  /// Prometheus text exposition format (version 0.0.4): counters as
  /// `pdet_<name>_total`, gauges as `pdet_<name>`, histograms with
  /// cumulative `le` buckets + `_sum`/`_count`. Dots in metric names become
  /// underscores; every line is `# TYPE`-annotated.
  std::string to_prometheus() const;

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, long long, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

#ifdef PDET_OBS_DISABLED
inline void counter_add(std::string_view, long long = 1) {}
inline void gauge_set(std::string_view, double) {}
inline void observe(std::string_view, double) {}
#else
/// Add `delta` to a counter (creating it at 0).
void counter_add(std::string_view name, long long delta = 1);
/// Set a gauge to an absolute value.
void gauge_set(std::string_view name, double value);
/// Record one sample into a histogram (default latency bounds).
void observe(std::string_view name, double value);
#endif

}  // namespace pdet::obs
