#include "src/obs/timeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/util/strings.hpp"

namespace pdet::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// Mirrors runtime::FrameStatus (obs cannot depend on runtime — the
/// dependency runs the other way).
const char* status_name(std::uint8_t status) {
  switch (status) {
    case 0: return "ok";
    case 1: return "degraded";
    case 2: return "drop_queue";
    case 3: return "drop_deadline";
    case 4: return "error";
    case 5: return "degraded_input";
  }
  return "?";
}

/// Mirrors guard::FrameQuality / guard::CameraState (same dependency rule).
const char* quality_name(std::uint8_t quality) {
  switch (quality) {
    case 0: return "healthy";
    case 1: return "degraded";
    case 2: return "unusable";
  }
  return "?";
}

const char* camera_name(std::uint8_t state) {
  switch (state) {
    case 0: return "healthy";
    case 1: return "suspect";
    case 2: return "quarantined";
  }
  return "?";
}

double ms_between(std::uint64_t from_ns, std::uint64_t to_ns) {
  if (from_ns == 0 || to_ns == 0 || to_ns < from_ns) return 0.0;
  return static_cast<double>(to_ns - from_ns) / 1e6;
}

/// First / last non-zero stamp of a timeline, for total latency.
std::uint64_t first_stamp(const FrameTimeline& t) {
  for (const std::uint64_t s :
       {t.client_encode_ns, t.service_recv_ns, t.gate_ns, t.queue_admit_ns,
        t.schedule_ns, t.engine_start_ns, t.engine_end_ns, t.deliver_ns,
        t.wire_send_ns, t.client_decode_ns}) {
    if (s != 0) return s;
  }
  return 0;
}

std::uint64_t last_stamp(const FrameTimeline& t) {
  for (const std::uint64_t s :
       {t.client_decode_ns, t.wire_send_ns, t.deliver_ns, t.engine_end_ns,
        t.engine_start_ns, t.schedule_ns, t.queue_admit_ns, t.gate_ns,
        t.service_recv_ns, t.client_encode_ns}) {
    if (s != 0) return s;
  }
  return 0;
}

}  // namespace

std::uint64_t timeline_now_ns() {
  // steady_clock's epoch is process-arbitrary but its count is positive in
  // practice (boot-relative); keep 0 reserved for "not recorded".
  const auto ns = Clock::now().time_since_epoch().count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 1;
}

TimelineRing::TimelineRing(std::size_t capacity) {
  slots_.resize(capacity == 0 ? 1 : capacity);
}

void TimelineRing::record(const FrameTimeline& t) {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_[head_] = t;
  head_ = (head_ + 1) % slots_.size();
  count_ = std::min(count_ + 1, slots_.size());
  ++total_;
}

std::size_t TimelineRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::uint64_t TimelineRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::vector<FrameTimeline> TimelineRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FrameTimeline> out;
  out.reserve(count_);
  const std::size_t start = (head_ + slots_.size() - count_) % slots_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(slots_[(start + i) % slots_.size()]);
  }
  return out;
}

FlightRecorder::FlightRecorder(std::size_t depth_per_stream)
    : depth_(depth_per_stream == 0 ? 1 : depth_per_stream) {}

void FlightRecorder::attach_stream(int stream, std::string name) {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  for (const auto& r : rings_) {
    if (r->stream == stream) return;
  }
  rings_.push_back(
      std::make_unique<StreamRing>(stream, std::move(name), depth_));
}

FlightRecorder::StreamRing* FlightRecorder::find(int stream) {
  // rings_ entries are heap nodes that are never reseated or removed, so a
  // pointer fetched under the attach lock stays valid after releasing it.
  std::lock_guard<std::mutex> lock(attach_mutex_);
  for (const auto& r : rings_) {
    if (r->stream == stream) return r.get();
  }
  return nullptr;
}

void FlightRecorder::record(const FrameTimeline& t) {
  StreamRing* ring = find(t.stream);
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->ring.record(t);
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r->ring.total_recorded();
  return total;
}

std::uint64_t FlightRecorder::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<FrameTimeline> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  std::vector<FrameTimeline> out;
  for (const auto& r : rings_) {
    const std::vector<FrameTimeline> part = r->ring.snapshot();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

TimelineBreakdown breakdown(const FrameTimeline& t) {
  TimelineBreakdown b;
  b.ingress_ms = ms_between(t.client_encode_ns, t.service_recv_ns);
  b.gate_ms = ms_between(t.service_recv_ns, t.gate_ns);
  b.admit_ms = ms_between(t.service_recv_ns, t.queue_admit_ns);
  b.queue_ms = ms_between(t.queue_admit_ns, t.schedule_ns);
  b.engine_ms = ms_between(t.engine_start_ns, t.engine_end_ns);
  b.deliver_ms = ms_between(t.engine_end_ns, t.deliver_ns);
  b.egress_ms = ms_between(t.deliver_ns, t.wire_send_ns);
  b.return_ms = ms_between(t.wire_send_ns, t.client_decode_ns);
  b.total_ms = ms_between(first_stamp(t), last_stamp(t));
  return b;
}

std::string to_line(const FrameTimeline& t) {
  const TimelineBreakdown b = breakdown(t);
  std::string out = util::format(
      "tag=%llu stream=%d seq=%llu %s rung%u",
      static_cast<unsigned long long>(t.trace_id), t.stream,
      static_cast<unsigned long long>(t.sequence), status_name(t.status),
      static_cast<unsigned>(t.degrade_level));
  if (t.input_quality != 0 || t.camera_state != 0) {
    out += util::format(" input=%s cam=%s", quality_name(t.input_quality),
                        camera_name(t.camera_state));
  }
  if (b.ingress_ms > 0.0) out += util::format(" ingress=%.3fms", b.ingress_ms);
  if (b.gate_ms > 0.0) out += util::format(" gate=%.3fms", b.gate_ms);
  out += util::format(" admit=%.3fms queue=%.3fms engine=%.3fms", b.admit_ms,
                      b.queue_ms, b.engine_ms);
  if (t.tiles_planned > 0) {
    out += util::format(" tiles=%u/%u", static_cast<unsigned>(t.tiles_detected),
                        static_cast<unsigned>(t.tiles_planned));
  }
  if (t.level_count > 0) {
    out += " levels[";
    const std::size_t n =
        std::min<std::size_t>(t.level_count, kTimelineMaxLevels);
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) out.push_back(' ');
      out += util::format("%.2f", static_cast<double>(t.level_us[i]) / 1e3);
    }
    out += "]ms";
  }
  out += util::format(" deliver=%.3fms", b.deliver_ms);
  if (b.egress_ms > 0.0) out += util::format(" egress=%.3fms", b.egress_ms);
  if (b.return_ms > 0.0) out += util::format(" return=%.3fms", b.return_ms);
  out += util::format(" total=%.3fms", b.total_ms);
  return out;
}

std::string FlightRecorder::to_text() const {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  std::string out = "flight recorder dump";
  out += util::format(" (depth %zu per stream, %llu dropped)\n", depth_,
                      static_cast<unsigned long long>(
                          dropped_.load(std::memory_order_relaxed)));
  for (const auto& r : rings_) {
    const std::vector<FrameTimeline> part = r->ring.snapshot();
    out += util::format(
        "stream %d \"%s\": %zu retained of %llu recorded\n", r->stream,
        r->name.c_str(), part.size(),
        static_cast<unsigned long long>(r->ring.total_recorded()));
    for (const FrameTimeline& t : part) {
      out += "  " + to_line(t) + "\n";
    }
  }
  if (rings_.empty()) out += "(no streams attached)\n";
  return out;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += util::format("\\u%04x", static_cast<unsigned>(c));
    } else {
      out.push_back(c);
    }
  }
}

/// One "X" slice on a per-hop row. pid = stream, tid = hop row.
void append_slice(std::string& out, bool& first, const char* name, int pid,
                  int tid, std::uint64_t start_ns, std::uint64_t end_ns,
                  std::uint64_t tag, std::uint64_t seq) {
  if (start_ns == 0 || end_ns < start_ns) return;
  if (!first) out.push_back(',');
  first = false;
  out += util::format(
      "{\"name\":\"%s\",\"cat\":\"frame\",\"ph\":\"X\",\"ts\":%.3f,"
      "\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"tag\":%llu,"
      "\"seq\":%llu}}",
      name, static_cast<double>(start_ns) / 1e3,
      static_cast<double>(end_ns - start_ns) / 1e3, pid, tid,
      static_cast<unsigned long long>(tag),
      static_cast<unsigned long long>(seq));
}

}  // namespace

std::string FlightRecorder::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& r : rings_) {
    // Name the stream's pid row for the trace viewer.
    if (!first) out.push_back(',');
    first = false;
    out += util::format(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
        "\"args\":{\"name\":\"stream ",
        r->stream);
    append_json_escaped(out, r->name);
    out += "\"}}";
    for (const FrameTimeline& t : r->ring.snapshot()) {
      const int pid = r->stream;
      append_slice(out, first, "ingress", pid, 1, t.client_encode_ns,
                   t.service_recv_ns, t.trace_id, t.sequence);
      append_slice(out, first, "gate", pid, 9, t.service_recv_ns, t.gate_ns,
                   t.trace_id, t.sequence);
      append_slice(out, first, "admit", pid, 2, t.service_recv_ns,
                   t.queue_admit_ns, t.trace_id, t.sequence);
      append_slice(out, first, "queue", pid, 3, t.queue_admit_ns,
                   t.schedule_ns, t.trace_id, t.sequence);
      append_slice(out, first, "engine", pid, 4, t.engine_start_ns,
                   t.engine_end_ns, t.trace_id, t.sequence);
      // Per-level slices nest inside the engine span, back to back.
      std::uint64_t level_start = t.engine_start_ns;
      const std::size_t n =
          std::min<std::size_t>(t.level_count, kTimelineMaxLevels);
      for (std::size_t i = 0; i < n && level_start != 0; ++i) {
        const std::uint64_t level_end =
            level_start + std::uint64_t{t.level_us[i]} * 1000;
        char level_name[24];
        std::snprintf(level_name, sizeof(level_name), "level %zu", i);
        append_slice(out, first, level_name, pid, 5, level_start, level_end,
                     t.trace_id, t.sequence);
        level_start = level_end;
      }
      append_slice(out, first, "deliver", pid, 6, t.engine_end_ns,
                   t.deliver_ns, t.trace_id, t.sequence);
      append_slice(out, first, "egress", pid, 7, t.deliver_ns, t.wire_send_ns,
                   t.trace_id, t.sequence);
      append_slice(out, first, "return", pid, 8, t.wire_send_ns,
                   t.client_decode_ns, t.trace_id, t.sequence);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace pdet::obs
