#include "src/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <tuple>

#include "src/obs/trace.hpp"
#include "src/util/assert.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace pdet::obs {
namespace {

#ifdef PDET_OBS_FORCE_ENABLED
constexpr bool kMetricsDefaultOn = true;
#else
constexpr bool kMetricsDefaultOn = false;
#endif

std::atomic<bool> g_metrics{kMetricsDefaultOn};

constexpr double kLatencyBoundsMs[] = {0.1, 0.2, 0.5, 1.0,  2.0,  5.0,
                                       10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                                       1000.0, 3200.0};

/// JSON-safe rendering of a double: finite values as shortest round-trip
/// (%.17g is overkill for reports; %.6g keeps the export stable and small),
/// non-finite as null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return util::format("%.6g", v);
}

void append_json_key(std::string& out, const std::string& name) {
  out.push_back('"');
  for (const char c : name) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\":";
}

/// Map a dotted pdet metric name onto the Prometheus name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]* with the `pdet_` namespace prefix.
std::string prometheus_name(const std::string& name) {
  std::string out = "pdet_";
  out.reserve(name.size() + 5);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus sample value: plain decimal, +Inf/-Inf/NaN spelled out.
std::string prometheus_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return util::format("%.9g", v);
}

}  // namespace

bool metrics_enabled() {
  // The registry is thread-safe; per-thread mutes (the engine's level lanes,
  // test helpers) still read metrics as disabled so deliberately redundant
  // work stays out of the counters. See ScopedThreadMute in trace.hpp.
  return g_metrics.load(std::memory_order_relaxed) && !obs_thread_muted();
}
void set_metrics_enabled(bool enabled) {
  g_metrics.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PDET_REQUIRE(!bounds_.empty());
  PDET_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Buckets carry inclusive upper edges (Prometheus "le" convention):
  // bucket i counts values in (bounds[i-1], bounds[i]].
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  acc_.add(value);
  percentiles_.add(value);
}

HistogramSummary Histogram::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSummary s;
  s.count = acc_.count();
  s.mean = acc_.mean();
  s.min = acc_.min();
  s.max = acc_.max();
  s.p50 = percentiles_.value(0);
  s.p95 = percentiles_.value(1);
  s.p99 = percentiles_.value(2);
  s.bounds = bounds_;
  s.buckets = buckets_;
  return s;
}

std::span<const double> default_latency_bounds_ms() {
  return kLatencyBoundsMs;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::counter_add(std::string_view name, long long delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void Registry::gauge_set(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (bounds.empty()) bounds = default_latency_bounds_ms();
  // Histogram owns a mutex and cannot be moved; construct in place.
  return histograms_
      .emplace(std::piecewise_construct, std::forward_as_tuple(name),
               std::forward_as_tuple(
                   std::vector<double>(bounds.begin(), bounds.end())))
      .first->second;
}

void Registry::observe(std::string_view name, double value) {
  histogram(name).record(value);
}

long long Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double Registry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

bool Registry::has_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.find(name) != histograms_.end();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_key(out, name);
    out += util::format("%lld", value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_key(out, name);
    out += json_number(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_key(out, name);
    const HistogramSummary s = hist.summary();
    out += util::format("{\"count\":%llu",
                        static_cast<unsigned long long>(s.count));
    out += ",\"mean\":" + json_number(s.mean);
    out += ",\"min\":" + json_number(s.min);
    out += ",\"max\":" + json_number(s.max);
    out += ",\"p50\":" + json_number(s.p50);
    out += ",\"p95\":" + json_number(s.p95);
    out += ",\"p99\":" + json_number(s.p99);
    out += ",\"bounds\":[";
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += json_number(s.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += util::format("%llu", static_cast<unsigned long long>(s.buckets[i]));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string Registry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  if (!counters_.empty()) {
    util::Table table({"counter", "value"});
    for (const auto& [name, value] : counters_) {
      table.add_row({name, util::format("%lld", value)});
    }
    out += table.to_string();
  }
  if (!gauges_.empty()) {
    util::Table table({"gauge", "value"});
    for (const auto& [name, value] : gauges_) {
      table.add_row({name, util::format("%.6g", value)});
    }
    out += table.to_string();
  }
  if (!histograms_.empty()) {
    util::Table table(
        {"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, hist] : histograms_) {
      const HistogramSummary s = hist.summary();
      table.add_row({name,
                     util::format("%llu", static_cast<unsigned long long>(s.count)),
                     util::to_fixed(s.mean, 3), util::to_fixed(s.p50, 3),
                     util::to_fixed(s.p95, 3), util::to_fixed(s.p99, 3),
                     util::to_fixed(s.max, 3)});
    }
    out += table.to_string();
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    const std::string pname = prometheus_name(name) + "_total";
    out += "# TYPE " + pname + " counter\n";
    out += pname + util::format(" %lld\n", value);
  }
  for (const auto& [name, value] : gauges_) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + prometheus_number(value) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const HistogramSummary s = hist.summary();
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    // Buckets are stored per-interval; Prometheus wants cumulative counts.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      cumulative += s.buckets[i];
      out += pname + "_bucket{le=\"" + prometheus_number(s.bounds[i]) + "\"}" +
             util::format(" %llu\n",
                          static_cast<unsigned long long>(cumulative));
    }
    cumulative += s.buckets.back();
    out += pname + "_bucket{le=\"+Inf\"}" +
           util::format(" %llu\n", static_cast<unsigned long long>(cumulative));
    // The accumulator keeps mean, not sum; reconstruct (exact for count 0).
    out += pname + "_sum " +
           prometheus_number(s.mean * static_cast<double>(s.count)) + "\n";
    out += pname + util::format("_count %llu\n",
                                static_cast<unsigned long long>(s.count));
  }
  return out;
}

#ifndef PDET_OBS_DISABLED
void counter_add(std::string_view name, long long delta) {
  if (!metrics_enabled()) return;
  Registry::instance().counter_add(name, delta);
}

void gauge_set(std::string_view name, double value) {
  if (!metrics_enabled()) return;
  Registry::instance().gauge_set(name, value);
}

void observe(std::string_view name, double value) {
  if (!metrics_enabled()) return;
  Registry::instance().observe(name, value);
}
#endif

}  // namespace pdet::obs
