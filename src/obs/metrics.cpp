#include "src/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/obs/trace.hpp"
#include "src/util/assert.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace pdet::obs {
namespace {

std::atomic<bool> g_metrics{false};

constexpr double kLatencyBoundsMs[] = {0.1, 0.2, 0.5, 1.0,  2.0,  5.0,
                                       10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                                       1000.0, 3200.0};

/// JSON-safe rendering of a double: finite values as shortest round-trip
/// (%.17g is overkill for reports; %.6g keeps the export stable and small),
/// non-finite as null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return util::format("%.6g", v);
}

void append_json_key(std::string& out, const std::string& name) {
  out.push_back('"');
  for (const char c : name) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\":";
}

}  // namespace

bool metrics_enabled() {
  // The registry is single-threaded; per-thread mutes (worker pools) read
  // metrics as disabled, same as spans. See ScopedThreadMute in trace.hpp.
  return g_metrics.load(std::memory_order_relaxed) && !obs_thread_muted();
}
void set_metrics_enabled(bool enabled) {
  g_metrics.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PDET_REQUIRE(!bounds_.empty());
  PDET_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) {
  // Buckets carry inclusive upper edges (Prometheus "le" convention):
  // bucket i counts values in (bounds[i-1], bounds[i]].
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  acc_.add(value);
  percentiles_.add(value);
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = acc_.count();
  s.mean = acc_.mean();
  s.min = acc_.min();
  s.max = acc_.max();
  s.p50 = percentiles_.value(0);
  s.p95 = percentiles_.value(1);
  s.p99 = percentiles_.value(2);
  s.bounds = bounds_;
  s.buckets = buckets_;
  return s;
}

std::span<const double> default_latency_bounds_ms() {
  return kLatencyBoundsMs;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::counter_add(std::string_view name, long long delta) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void Registry::gauge_set(std::string_view name, double value) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (bounds.empty()) bounds = default_latency_bounds_ms();
  return histograms_
      .emplace(std::string(name),
               Histogram(std::vector<double>(bounds.begin(), bounds.end())))
      .first->second;
}

void Registry::observe(std::string_view name, double value) {
  histogram(name).record(value);
}

long long Registry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double Registry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

bool Registry::has_histogram(std::string_view name) const {
  return histograms_.find(name) != histograms_.end();
}

void Registry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string Registry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_key(out, name);
    out += util::format("%lld", value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_key(out, name);
    out += json_number(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_key(out, name);
    const HistogramSummary s = hist.summary();
    out += util::format("{\"count\":%llu",
                        static_cast<unsigned long long>(s.count));
    out += ",\"mean\":" + json_number(s.mean);
    out += ",\"min\":" + json_number(s.min);
    out += ",\"max\":" + json_number(s.max);
    out += ",\"p50\":" + json_number(s.p50);
    out += ",\"p95\":" + json_number(s.p95);
    out += ",\"p99\":" + json_number(s.p99);
    out += ",\"bounds\":[";
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += json_number(s.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += util::format("%llu", static_cast<unsigned long long>(s.buckets[i]));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string Registry::to_text() const {
  std::string out;
  if (!counters_.empty()) {
    util::Table table({"counter", "value"});
    for (const auto& [name, value] : counters_) {
      table.add_row({name, util::format("%lld", value)});
    }
    out += table.to_string();
  }
  if (!gauges_.empty()) {
    util::Table table({"gauge", "value"});
    for (const auto& [name, value] : gauges_) {
      table.add_row({name, util::format("%.6g", value)});
    }
    out += table.to_string();
  }
  if (!histograms_.empty()) {
    util::Table table(
        {"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, hist] : histograms_) {
      const HistogramSummary s = hist.summary();
      table.add_row({name,
                     util::format("%llu", static_cast<unsigned long long>(s.count)),
                     util::to_fixed(s.mean, 3), util::to_fixed(s.p50, 3),
                     util::to_fixed(s.p95, 3), util::to_fixed(s.p99, 3),
                     util::to_fixed(s.max, 3)});
    }
    out += table.to_string();
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

#ifndef PDET_OBS_DISABLED
void counter_add(std::string_view name, long long delta) {
  if (!metrics_enabled()) return;
  Registry::instance().counter_add(name, delta);
}

void gauge_set(std::string_view name, double value) {
  if (!metrics_enabled()) return;
  Registry::instance().gauge_set(name, value);
}

void observe(std::string_view name, double value) {
  if (!metrics_enabled()) return;
  Registry::instance().observe(name, value);
}
#endif

}  // namespace pdet::obs
