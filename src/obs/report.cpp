#include "src/obs/report.hpp"

#include <cstdio>

#include "src/util/logging.hpp"

namespace pdet::obs {

void add_cli_options(util::Cli& cli) {
  cli.add_string("trace-out", "",
                 "write Chrome trace_event JSON of pipeline spans to FILE");
  cli.add_flag("metrics", "print the counter/gauge/histogram report");
  cli.add_string("metrics-out", "", "write the metrics report as JSON to FILE");
}

bool configure_from_cli(const util::Cli& cli) {
  const bool want_trace = !cli.get_string("trace-out").empty();
  const bool want_metrics =
      cli.get_flag("metrics") || !cli.get_string("metrics-out").empty();
  if (want_trace) set_tracing_enabled(true);
  // Tracing implies metrics: the per-stage counters give the spans context.
  if (want_trace || want_metrics) set_metrics_enabled(true);
  return want_trace || want_metrics;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    util::log_error("obs: cannot open %s for writing", path.c_str());
    return false;
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok) util::log_error("obs: short write to %s", path.c_str());
  return ok;
}

bool report_from_cli(const util::Cli& cli) {
  bool ok = true;
  const std::string trace_path = cli.get_string("trace-out");
  if (!trace_path.empty()) {
    ok = write_file(trace_path, trace_to_chrome_json()) && ok;
    std::printf("\n--- per-stage span summary (%zu spans -> %s) ---\n%s",
                trace_events().size(), trace_path.c_str(),
                trace_summary_text().c_str());
  }
  const bool want_metrics =
      cli.get_flag("metrics") || !cli.get_string("metrics-out").empty();
  if (want_metrics) {
    std::printf("\n--- metrics ---\n%s",
                Registry::instance().to_text().c_str());
    const std::string metrics_path = cli.get_string("metrics-out");
    if (!metrics_path.empty()) {
      ok = write_file(metrics_path, Registry::instance().to_json()) && ok;
      std::printf("metrics JSON written to %s\n", metrics_path.c_str());
    }
  }
  return ok;
}

}  // namespace pdet::obs
