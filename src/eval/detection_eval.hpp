// Detection-level evaluation (full frames, not window classification).
//
// Window accuracy (Table 1) is only half the story for a DAS: what matters
// operationally is detection performance on whole frames. This module
// implements the standard protocol of the pedestrian-detection literature
// the paper builds on (Dollar et al. [6]): greedy IoU >= 0.5 matching of
// detections to ground truth per frame, miss rate vs false positives per
// image (FPPI) swept over the detector threshold, and the log-average miss
// rate summary statistic.
#pragma once

#include <span>
#include <vector>

#include "src/detect/detection.hpp"

namespace pdet::eval {

struct GroundTruth {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
};

/// Matching result for one frame at one threshold.
struct FrameMatch {
  int true_positives = 0;
  int false_positives = 0;
  int missed = 0;
};

/// Greedy matching: detections in descending score order claim the unmatched
/// ground-truth box with highest IoU (if >= min_iou). Detections with score
/// <= threshold are ignored.
FrameMatch match_frame(std::span<const detect::Detection> detections,
                       std::span<const GroundTruth> truth, float threshold,
                       double min_iou = 0.5);

struct MissRatePoint {
  double fppi = 0.0;       ///< false positives per image
  double miss_rate = 0.0;  ///< fraction of ground truth missed
  float threshold = 0.0f;
};

/// Sweep the operating threshold over all detection scores across frames and
/// return the (FPPI, miss-rate) curve, high threshold first.
std::vector<MissRatePoint> miss_rate_curve(
    std::span<const std::vector<detect::Detection>> per_frame_detections,
    std::span<const std::vector<GroundTruth>> per_frame_truth,
    double min_iou = 0.5);

/// Log-average miss rate: geometric mean of the miss rate sampled at nine
/// FPPI values evenly log-spaced in [1e-2, 1e0] (Dollar et al.'s summary
/// statistic). Curve points are linearly interpolated in log-FPPI; values
/// beyond the curve's ends clamp to the nearest point.
double log_average_miss_rate(std::span<const MissRatePoint> curve);

}  // namespace pdet::eval
