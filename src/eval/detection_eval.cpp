#include "src/eval/detection_eval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/assert.hpp"

namespace pdet::eval {
namespace {

detect::Detection to_box(const GroundTruth& t) {
  detect::Detection d;
  d.x = t.x;
  d.y = t.y;
  d.width = t.width;
  d.height = t.height;
  return d;
}

}  // namespace

FrameMatch match_frame(std::span<const detect::Detection> detections,
                       std::span<const GroundTruth> truth, float threshold,
                       double min_iou) {
  PDET_REQUIRE(min_iou > 0.0 && min_iou <= 1.0);
  std::vector<const detect::Detection*> active;
  for (const auto& d : detections) {
    if (d.score > threshold) active.push_back(&d);
  }
  std::sort(active.begin(), active.end(),
            [](const detect::Detection* a, const detect::Detection* b) {
              return a->score > b->score;
            });

  std::vector<bool> claimed(truth.size(), false);
  FrameMatch result;
  for (const detect::Detection* d : active) {
    int best = -1;
    double best_iou = min_iou;
    for (std::size_t t = 0; t < truth.size(); ++t) {
      if (claimed[t]) continue;
      const double v = detect::iou(*d, to_box(truth[t]));
      if (v >= best_iou) {
        best_iou = v;
        best = static_cast<int>(t);
      }
    }
    if (best >= 0) {
      claimed[static_cast<std::size_t>(best)] = true;
      ++result.true_positives;
    } else {
      ++result.false_positives;
    }
  }
  result.missed = static_cast<int>(truth.size()) - result.true_positives;
  return result;
}

std::vector<MissRatePoint> miss_rate_curve(
    std::span<const std::vector<detect::Detection>> per_frame_detections,
    std::span<const std::vector<GroundTruth>> per_frame_truth,
    double min_iou) {
  PDET_REQUIRE(per_frame_detections.size() == per_frame_truth.size());
  PDET_REQUIRE(!per_frame_detections.empty());

  // Candidate thresholds: every distinct score, descending, plus +inf.
  std::vector<float> thresholds;
  for (const auto& dets : per_frame_detections) {
    for (const auto& d : dets) thresholds.push_back(d.score);
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  std::size_t total_truth = 0;
  for (const auto& t : per_frame_truth) total_truth += t.size();
  PDET_REQUIRE(total_truth > 0);

  std::vector<MissRatePoint> curve;
  const auto frames = static_cast<double>(per_frame_detections.size());
  auto evaluate = [&](float threshold) {
    int tp = 0;
    int fp = 0;
    for (std::size_t f = 0; f < per_frame_detections.size(); ++f) {
      const FrameMatch m = match_frame(per_frame_detections[f],
                                       per_frame_truth[f], threshold, min_iou);
      tp += m.true_positives;
      fp += m.false_positives;
    }
    MissRatePoint p;
    p.fppi = fp / frames;
    p.miss_rate = 1.0 - static_cast<double>(tp) / static_cast<double>(total_truth);
    p.threshold = threshold;
    curve.push_back(p);
  };
  for (const float t : thresholds) {
    // Evaluate just below each distinct score so that score is included.
    evaluate(std::nextafter(t, -std::numeric_limits<float>::infinity()));
  }
  if (curve.empty()) {
    evaluate(0.0f);
  }
  return curve;
}

double log_average_miss_rate(std::span<const MissRatePoint> curve) {
  PDET_REQUIRE(!curve.empty());
  // Sample at 9 points log-spaced over [1e-2, 1e0].
  double log_sum = 0.0;
  int samples = 0;
  for (int k = 0; k < 9; ++k) {
    const double fppi = std::pow(10.0, -2.0 + 2.0 * k / 8.0);
    // Find the curve's miss rate at this FPPI (curve fppi is nondecreasing
    // as threshold drops; points may be unsorted — scan for bracketing).
    double mr;
    // Lowest achievable fppi:
    const auto [lo_it, hi_it] = std::minmax_element(
        curve.begin(), curve.end(),
        [](const MissRatePoint& a, const MissRatePoint& b) {
          return a.fppi < b.fppi;
        });
    if (fppi <= lo_it->fppi) {
      mr = lo_it->miss_rate;
    } else if (fppi >= hi_it->fppi) {
      // Beyond the sweep: the best (lowest) miss rate observed.
      mr = hi_it->miss_rate;
      for (const auto& p : curve) mr = std::min(mr, p.miss_rate);
    } else {
      // Interpolate between the tightest bracketing points in log-FPPI.
      const MissRatePoint* below = &*lo_it;
      const MissRatePoint* above = &*hi_it;
      for (const auto& p : curve) {
        if (p.fppi <= fppi && p.fppi >= below->fppi) below = &p;
        if (p.fppi >= fppi && p.fppi <= above->fppi) above = &p;
      }
      if (above->fppi == below->fppi) {
        mr = std::min(above->miss_rate, below->miss_rate);
      } else {
        // Clamp FPPI inside the logs: a curve point at exactly 0 FPPI (no
        // false positives at the strictest threshold) is common.
        const double lo_f = std::max(below->fppi, 1e-6);
        const double hi_f = std::max(above->fppi, 1e-6);
        const double t = hi_f == lo_f ? 0.0
                                      : (std::log(fppi) - std::log(lo_f)) /
                                            (std::log(hi_f) - std::log(lo_f));
        mr = below->miss_rate + t * (above->miss_rate - below->miss_rate);
      }
    }
    // Guard the log at zero miss rate (clamp like the reference tooling).
    log_sum += std::log(std::max(mr, 1e-4));
    ++samples;
  }
  return std::exp(log_sum / samples);
}

}  // namespace pdet::eval
