#include "src/eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "src/util/assert.hpp"
#include "src/util/strings.hpp"

namespace pdet::eval {

double Confusion::accuracy() const {
  const int t = total();
  return t > 0 ? static_cast<double>(true_pos + true_neg) / t : 0.0;
}

double Confusion::true_positive_rate() const {
  const int p = true_pos + false_neg;
  return p > 0 ? static_cast<double>(true_pos) / p : 0.0;
}

double Confusion::false_positive_rate() const {
  const int n = true_neg + false_pos;
  return n > 0 ? static_cast<double>(false_pos) / n : 0.0;
}

double Confusion::precision() const {
  const int pp = true_pos + false_pos;
  return pp > 0 ? static_cast<double>(true_pos) / pp : 0.0;
}

Confusion confusion_at(std::span<const float> scores,
                       std::span<const signed char> labels, float threshold) {
  PDET_REQUIRE(scores.size() == labels.size());
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] > threshold;
    const bool actual = labels[i] > 0;
    if (predicted && actual) ++c.true_pos;
    else if (predicted && !actual) ++c.false_pos;
    else if (!predicted && actual) ++c.false_neg;
    else ++c.true_neg;
  }
  return c;
}

RocCurve roc_curve(std::span<const float> scores,
                   std::span<const signed char> labels) {
  PDET_REQUIRE(scores.size() == labels.size());
  PDET_REQUIRE(!scores.empty());
  const std::size_t n = scores.size();
  std::size_t npos = 0;
  for (const auto l : labels) {
    if (l > 0) ++npos;
  }
  const std::size_t nneg = n - npos;
  PDET_REQUIRE(npos > 0 && nneg > 0);

  // Sort by descending score; sweep the threshold down through every value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  RocCurve roc;
  roc.points.push_back({0.0, 0.0, static_cast<double>(scores[order[0]]) + 1.0});
  std::size_t tp = 0;
  std::size_t fp = 0;
  double auc = 0.0;
  double prev_fpr = 0.0;
  double prev_tpr = 0.0;
  std::size_t i = 0;
  while (i < n) {
    // Consume ties together so the curve is threshold-consistent.
    const float s = scores[order[i]];
    while (i < n && scores[order[i]] == s) {
      if (labels[order[i]] > 0) ++tp;
      else ++fp;
      ++i;
    }
    const double fpr = static_cast<double>(fp) / static_cast<double>(nneg);
    const double tpr = static_cast<double>(tp) / static_cast<double>(npos);
    auc += (fpr - prev_fpr) * (tpr + prev_tpr) / 2.0;
    roc.points.push_back({fpr, tpr, static_cast<double>(s)});
    prev_fpr = fpr;
    prev_tpr = tpr;
  }
  roc.auc = auc;

  // EER: the point where FPR == FNR == 1 - TPR; interpolate between the
  // bracketing sweep points.
  double eer = 1.0;
  double eer_thr = 0.0;
  for (std::size_t k = 1; k < roc.points.size(); ++k) {
    const auto& a = roc.points[k - 1];
    const auto& b = roc.points[k];
    const double da = a.fpr - (1.0 - a.tpr);
    const double db = b.fpr - (1.0 - b.tpr);
    if (da <= 0.0 && db >= 0.0) {
      const double t = (db - da) != 0.0 ? -da / (db - da) : 0.0;
      const double fpr = a.fpr + t * (b.fpr - a.fpr);
      eer = fpr;
      eer_thr = a.threshold + t * (b.threshold - a.threshold);
      break;
    }
  }
  if (eer == 1.0) {
    // Fell through (degenerate curve): take the point minimizing |FPR-FNR|.
    double best = 2.0;
    for (const auto& p : roc.points) {
      const double diff = std::fabs(p.fpr - (1.0 - p.tpr));
      if (diff < best) {
        best = diff;
        eer = (p.fpr + (1.0 - p.tpr)) / 2.0;
        eer_thr = p.threshold;
      }
    }
  }
  roc.eer = eer;
  roc.eer_threshold = eer_thr;
  return roc;
}

PrCurve pr_curve(std::span<const float> scores,
                 std::span<const signed char> labels) {
  PDET_REQUIRE(scores.size() == labels.size());
  PDET_REQUIRE(!scores.empty());
  const std::size_t n = scores.size();
  std::size_t npos = 0;
  for (const auto l : labels) {
    if (l > 0) ++npos;
  }
  PDET_REQUIRE(npos > 0);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  PrCurve out;
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t i = 0;
  while (i < n) {
    const float s = scores[order[i]];
    while (i < n && scores[order[i]] == s) {
      if (labels[order[i]] > 0) ++tp;
      else ++fp;
      ++i;
    }
    PrPoint p;
    p.recall = static_cast<double>(tp) / static_cast<double>(npos);
    p.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    p.threshold = static_cast<double>(s);
    out.points.push_back(p);
  }

  // AP via the interpolated-precision envelope: for each sweep point use the
  // best precision at that recall or higher, integrating over recall steps.
  double ap = 0.0;
  double prev_recall = 0.0;
  double max_future_precision = 0.0;
  std::vector<double> envelope(out.points.size());
  for (std::size_t k = out.points.size(); k-- > 0;) {
    max_future_precision = std::max(max_future_precision, out.points[k].precision);
    envelope[k] = max_future_precision;
  }
  for (std::size_t k = 0; k < out.points.size(); ++k) {
    ap += (out.points[k].recall - prev_recall) * envelope[k];
    prev_recall = out.points[k].recall;
  }
  out.average_precision = ap;
  return out;
}

std::string roc_ascii_plot(const RocCurve& roc, int width, int height) {
  PDET_REQUIRE(width >= 10 && height >= 5);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  auto plot = [&](double fpr, double tpr, char ch) {
    const int x = std::clamp(static_cast<int>(std::lround(fpr * (width - 1))), 0,
                             width - 1);
    const int y = std::clamp(
        static_cast<int>(std::lround((1.0 - tpr) * (height - 1))), 0, height - 1);
    grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = ch;
  };
  // Chance diagonal first so the curve overdraws it.
  for (int k = 0; k < std::min(width, height) * 2; ++k) {
    const double t = static_cast<double>(k) / (std::min(width, height) * 2 - 1);
    plot(t, t, '.');
  }
  // Dense interpolation along curve segments.
  for (std::size_t k = 1; k < roc.points.size(); ++k) {
    const auto& a = roc.points[k - 1];
    const auto& b = roc.points[k];
    for (int s = 0; s <= 8; ++s) {
      const double t = s / 8.0;
      plot(a.fpr + t * (b.fpr - a.fpr), a.tpr + t * (b.tpr - a.tpr), '*');
    }
  }
  std::string out;
  out += util::format("TPR 1.0 +%s\n", std::string(static_cast<std::size_t>(width), '-').c_str());
  for (int y = 0; y < height; ++y) {
    out += util::format("        |%s\n", grid[static_cast<std::size_t>(y)].c_str());
  }
  out += util::format("    0.0 +%s\n", std::string(static_cast<std::size_t>(width), '-').c_str());
  out += util::format("        0.0%sFPR 1.0\n",
                      std::string(static_cast<std::size_t>(width) - 10, ' ').c_str());
  out += util::format("        AUC = %.4f   EER = %.4f (thr %.3f)\n", roc.auc,
                      roc.eer, roc.eer_threshold);
  return out;
}

}  // namespace pdet::eval
