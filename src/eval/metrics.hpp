// Classifier evaluation metrics for the paper's accuracy study.
//
// Table 1 reports accuracy plus true-positive/true-negative counts at the
// default threshold; Figure 4 reports ROC curves with AUC (area under the
// curve) and EER (equal error rate, where false-positive rate equals
// false-negative rate). All are computed here from raw decision scores.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace pdet::eval {

struct Confusion {
  int true_pos = 0;
  int true_neg = 0;
  int false_pos = 0;
  int false_neg = 0;

  int total() const { return true_pos + true_neg + false_pos + false_neg; }
  double accuracy() const;
  double true_positive_rate() const;   ///< recall / sensitivity
  double false_positive_rate() const;
  double precision() const;
};

/// Confusion at a fixed decision threshold (score > threshold => positive).
Confusion confusion_at(std::span<const float> scores,
                       std::span<const signed char> labels, float threshold);

struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

struct RocCurve {
  std::vector<RocPoint> points;  ///< swept from +inf threshold to -inf
  double auc = 0.0;              ///< trapezoidal area under the curve
  double eer = 0.0;              ///< error rate where FPR == FNR
  double eer_threshold = 0.0;
};

/// Full ROC sweep over all distinct score thresholds.
RocCurve roc_curve(std::span<const float> scores,
                   std::span<const signed char> labels);

/// Render an ROC curve as an ASCII plot (for bench/example console output).
std::string roc_ascii_plot(const RocCurve& roc, int width = 61, int height = 21);

struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
  double threshold = 0.0;
};

struct PrCurve {
  std::vector<PrPoint> points;        ///< swept from high to low threshold
  double average_precision = 0.0;     ///< AP: precision integrated over recall
};

/// Precision-recall sweep over all distinct thresholds, with AP computed by
/// the standard step-wise integration (precision envelope over recall).
PrCurve pr_curve(std::span<const float> scores,
                 std::span<const signed char> labels);

}  // namespace pdet::eval
