// Experiment E2 — reproduces paper Figure 4.
//
// "ROC curves for different test scenarios": the classifier at original
// scale, and both scaling methods at scale 1.1, with AUC (area under curve)
// and EER (equal error rate) reported for each. We print ASCII ROC plots
// and the AUC/EER summary table.
#include <cstdio>

#include "src/core/scale_experiment.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("bench_fig4_roc", "Reproduce paper Figure 4 (ROC curves)");
  cli.add_int("test-pos", 400, "positive test windows");
  cli.add_int("test-neg", 1200, "negative test windows");
  cli.add_flag("quick", "small test set for smoke runs");
  if (!cli.parse(argc, argv)) return 1;

  util::set_default_log_level(util::LogLevel::kWarn);
  core::ScaleExperimentConfig config;
  config.train_pos = 400;
  config.train_neg = 800;
  config.test_pos = cli.get_flag("quick") ? 120 : cli.get_int("test-pos");
  config.test_neg = cli.get_flag("quick") ? 240 : cli.get_int("test-neg");
  config.scales = {1.1};

  std::printf("E2 / paper Figure 4: ROC curves, AUC and EER\n\n");
  util::Timer timer;
  const core::ScaleExperimentResult result = core::run_scale_experiment(config);
  const core::ScaleRow& row = result.rows.front();

  std::printf("--- original scale (1.0) ---\n%s\n",
              eval::roc_ascii_plot(result.base.roc).c_str());
  std::printf("--- scale 1.1, conventional (image resize) ---\n%s\n",
              eval::roc_ascii_plot(row.image.roc).c_str());
  std::printf("--- scale 1.1, proposed (HOG feature resize) ---\n%s\n",
              eval::roc_ascii_plot(row.feature.roc).c_str());

  util::Table table({"scenario", "AUC", "EER"});
  table.add_row({"scale 1.0", util::to_fixed(result.base.roc.auc, 4),
                 util::to_fixed(result.base.roc.eer, 4)});
  table.add_row({"scale 1.1 image", util::to_fixed(row.image.roc.auc, 4),
                 util::to_fixed(row.image.roc.eer, 4)});
  table.add_row({"scale 1.1 HOG", util::to_fixed(row.feature.roc.auc, 4),
                 util::to_fixed(row.feature.roc.eer, 4)});
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\npaper shape: all three classifiers near-ideal (AUC ~ 1, small EER),\n"
      "with the proposed method's curve indistinguishable from the\n"
      "conventional one at scale 1.1.\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
