// UHD tiling bench: tile-parallel speedup, steady-state allocations, and
// ROI scheduling under a tight deadline.
//
// Three claims from the tiling design (DESIGN.md §13) measured end to end:
//
//   1. Tile parallelism scales: the same 3840x2160 frame through the same
//      warm TileEngine runs >= 2x faster with 4 tile lanes than with 1
//      (median of paired runs; the gate only counts on hosts with >= 4
//      cores — smaller machines report advisory numbers).
//   2. Zero steady state: once warm, a full tiled UHD pass performs no heap
//      allocation at all, measured with a global operator-new counter.
//   3. ROI holds its bounds: with the budget pinned to the tightest deadline
//      rung, every tile's age stays <= max_age and the tile the tracker
//      predicts for the pedestrian is freshly detected every frame.
//
// The workload is held fixed across resolutions: render_scene_scaled draws
// the SAME world (same seed, same base geometry) at HD and UHD, so the fps
// column differences are resolution cost, not scene luck.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "src/dataset/scene.hpp"
#include "src/detect/engine.hpp"
#include "src/detect/tracker.hpp"
#include "src/hog/descriptor.hpp"
#include "src/obs/report.hpp"
#include "src/svm/linear_svm.hpp"
#include "src/tile/engine.hpp"
#include "src/tile/roi.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

// Ground-truth heap accounting for the zero-allocation claim (same idiom as
// bench_frame_detection): every operator-new in the binary bumps a counter.
namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pdet;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// Throughput is independent of what the weights say, so a random model
// stands in for a trained one; sigma keeps the detection count small but
// non-zero, so the merge/NMS path runs on real data.
svm::LinearModel random_model(std::uint64_t seed) {
  util::Rng rng(seed);
  svm::LinearModel model;
  model.weights.resize(
      static_cast<std::size_t>(hog::HogParams().descriptor_size()));
  for (auto& w : model.weights) w = static_cast<float>(rng.normal(0, 0.02));
  model.bias = 0.0f;
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_tile_uhd",
                "UHD tiled detection: speedup, allocations, ROI bounds");
  cli.add_int("reps", 3, "paired speedup measurements (median of ratios)");
  cli.add_int("frames", 2, "frames per measurement");
  cli.add_int("tile-threads", 4, "tile lanes for the parallel configuration");
  cli.add_int("roi-frames", 14, "frames in the ROI scheduling section");
  cli.add_int("max-age", 3, "ROI staleness bound (frames)");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  obs::set_metrics_enabled(true);

  const int reps = cli.get_int("reps");
  const int frames = cli.get_int("frames");
  const int lanes = cli.get_int("tile-threads");
  const unsigned cores = std::thread::hardware_concurrency();
  const bool gated = cores >= 4;
  util::Timer total_timer;

  const hog::HogParams params;
  const svm::LinearModel model = random_model(99);
  detect::MultiscaleOptions ms;
  ms.scales = {1.0, 2.0};  // integer ladder: tiled pass is bit-exact
  ms.scan.threshold = 0.5f;

  std::printf("E12: UHD tiled detection (%d lane%s vs 1, %d cores, %d x %d "
              "frames per rep)\n\n",
              lanes, lanes == 1 ? "" : "s", cores, reps, frames);

  // --- tile-parallel speedup, workload fixed across resolutions ---
  util::Table table({"resolution", "grid", "untiled fps", "tiled x1 fps",
                     util::format("tiled x%d fps", lanes), "speedup"});
  double uhd_speedup = 0.0;
  struct Res {
    int w, h;
    const char* name;
  };
  for (const Res res : {Res{1920, 1080, "1920x1080"}, Res{3840, 2160, "3840x2160"}}) {
    util::Rng rng(4711);
    dataset::SceneOptions base;  // 960x540 base world, scaled up
    base.width = 960;
    base.height = 540;
    base.pedestrian_distances_m = {12.0, 20.0, 35.0};
    const dataset::Scene scene =
        dataset::render_scene_scaled(rng, base, res.w, res.h);

    detect::DetectionEngine untiled(detect::EngineOptions{.threads = 1});
    tile::TileEngineOptions topts1;
    tile::TileEngine tiled1(topts1);
    tile::TileEngineOptions toptsN;
    toptsN.threads = lanes;
    tile::TileEngine tiledN(toptsN);

    const auto time_untiled = [&] {
      util::Timer t;
      for (int i = 0; i < frames; ++i) {
        (void)untiled.process(scene.image, params, model, ms);
      }
      return t.seconds();
    };
    const auto time_tiled = [&](tile::TileEngine& engine) {
      util::Timer t;
      for (int i = 0; i < frames; ++i) {
        (void)engine.process(scene.image, params, model, ms);
      }
      return t.seconds();
    };

    // Warm every engine past its first-frame growth, then measure pairs.
    (void)untiled.process(scene.image, params, model, ms);
    (void)tiled1.process(scene.image, params, model, ms);
    (void)tiledN.process(scene.image, params, model, ms);
    std::vector<double> untiled_s, tiled1_s, tiledN_s, ratios;
    for (int r = 0; r < reps; ++r) {
      untiled_s.push_back(time_untiled());
      const double t1 = time_tiled(tiled1);
      const double tn = time_tiled(tiledN);
      tiled1_s.push_back(t1);
      tiledN_s.push_back(tn);
      ratios.push_back(t1 / tn);
    }
    const double speedup = median(ratios);
    if (res.w == 3840) uhd_speedup = speedup;
    const auto fps = [&](const std::vector<double>& s) {
      return util::to_fixed(frames / median(s), 2);
    };
    table.add_row({res.name,
                   util::format("%dx%d", tiledN.plan().tiles_x(),
                                tiledN.plan().tiles_y()),
                   fps(untiled_s), fps(tiled1_s), fps(tiledN_s),
                   util::to_fixed(speedup, 2) + "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("(tiled x1 vs untiled overhead is the halo re-compute; the "
              "speedup column is\n tiled x%d vs tiled x1, median of %d "
              "paired runs)\n\n",
              lanes, reps);

  // --- steady-state allocations: warm UHD tiled pass must allocate nothing ---
  util::Rng rng(4711);
  dataset::SceneOptions base;
  base.width = 960;
  base.height = 540;
  base.pedestrian_distances_m = {12.0, 20.0, 35.0};
  const dataset::Scene uhd = dataset::render_scene_scaled(rng, base, 3840, 2160);
  tile::TileEngineOptions topts;
  topts.threads = lanes;
  tile::TileEngine engine(topts);
  (void)engine.process(uhd.image, params, model, ms);
  (void)engine.process(uhd.image, params, model, ms);  // reach high water
  obs::set_metrics_enabled(false);
  constexpr int kSteadyFrames = 4;
  const long long before = g_heap_allocs.load();
  for (int i = 0; i < kSteadyFrames; ++i) {
    (void)engine.process(uhd.image, params, model, ms);
  }
  const long long steady =
      (g_heap_allocs.load() - before) / kSteadyFrames;
  obs::set_metrics_enabled(true);
  std::printf("steady state: %lld heap allocations per warm UHD frame "
              "(over %d frames, %d lanes, %.1f KiB tile workspaces) — "
              "expected 0\n\n",
              steady, kSteadyFrames, lanes,
              static_cast<double>(engine.stats().alloc_bytes) / 1024.0);

  // --- ROI scheduling under the tightest deadline rung ---
  // Truth boxes drive the tracker (a perfect-detector stand-in): the section
  // measures the *scheduler*, not the SVM. Budget = rung 2 = forced tiles
  // only; the gates are the hard staleness bound and 100% hot coverage of
  // the pedestrian's predicted tile.
  dataset::ApproachOptions aopts;
  aopts.scene.width = 3840;
  aopts.scene.height = 2160;
  aopts.scene.camera.focal_px = 7000.0;
  aopts.start_distance_m = 85.0;
  aopts.closing_speed_mps = 15.0;
  aopts.fps = 10.0;
  aopts.frames = cli.get_int("roi-frames");
  aopts.min_distance_m = 45.0;
  const auto sequence = dataset::render_approach_sequence(777, aopts);

  tile::TileEngineOptions ropts_engine;
  ropts_engine.threads = lanes;
  tile::TileEngine roi_engine(ropts_engine);
  tile::RoiOptions ropts;
  ropts.max_age = cli.get_int("max-age");
  tile::RoiScheduler roi(ropts);
  detect::Tracker tracker;
  std::vector<detect::Detection> predicted;
  std::vector<int> selection;
  int max_age_seen = 0;
  int ped_fresh = 0;
  int ped_checked = 0;
  long long fresh_tiles = 0;
  for (std::size_t f = 0; f < sequence.size(); ++f) {
    const auto& scene = sequence[f];
    const tile::TiledResult* res = nullptr;
    if (f == 0) {
      res = &roi_engine.process(scene.image, params, model, ms);
    } else {
      tracker.predict_boxes(1, predicted);
      const int budget =
          tile::RoiScheduler::rung_budget(roi_engine.plan().tile_count(), 2);
      roi.plan_frame(roi_engine.plan(), roi_engine.ages(), predicted, budget,
                     selection);
      res = &roi_engine.process(scene.image, params, model, ms, &selection);
    }
    // Perfect-detector stand-in for the tracker.
    std::vector<detect::Detection> truth_dets;
    for (const auto& t : scene.truth) {
      detect::Detection d;
      d.x = t.x;
      d.y = t.y;
      d.width = t.width;
      d.height = t.height;
      d.score = 1.0f;
      truth_dets.push_back(d);
    }
    tracker.update(truth_dets);
    max_age_seen = std::max(max_age_seen, res->max_age);
    fresh_tiles += res->tiles_detected;
    const auto& truth = scene.truth.front();
    const int cx = std::clamp(truth.x + truth.width / 2, 0,
                              roi_engine.plan().frame_width() - 1);
    const int cy = std::clamp(truth.y + truth.height / 2, 0,
                              roi_engine.plan().frame_height() - 1);
    const int ped_tile = roi_engine.plan().owner_of(cx, cy);
    if (f >= 2) {  // tracker confirms after 2 hits; hot coverage from there
      ++ped_checked;
      if (std::find(selection.begin(), selection.end(), ped_tile) !=
          selection.end()) {
        ++ped_fresh;
      }
    }
  }
  const int tile_count = roi_engine.plan().tile_count();
  std::printf("ROI rung 2 over %zu UHD frames (%d tiles, max-age %d): "
              "%.1f fresh tiles/frame (vs %d untiled), worst staleness %d, "
              "hot tile fresh %d/%d frames\n\n",
              sequence.size(), tile_count, ropts.max_age,
              static_cast<double>(fresh_tiles) /
                  static_cast<double>(sequence.size()),
              tile_count, max_age_seen, ped_fresh, ped_checked);

  obs::gauge_set("tile.bench.uhd_speedup", uhd_speedup);
  obs::gauge_set("tile.bench.steady_frame_allocs",
                 static_cast<double>(steady));
  obs::gauge_set("tile.bench.max_tile_age", static_cast<double>(max_age_seen));
  std::printf("elapsed: %.1f s\n", total_timer.seconds());
  if (!obs::report_from_cli(cli)) return 1;

  bool ok = true;
  if (steady != 0) {
    std::printf("FAIL: warm tiled frames allocate (%lld per frame)\n", steady);
    ok = false;
  }
  if (max_age_seen > ropts.max_age || ped_fresh != ped_checked) {
    std::printf("FAIL: ROI bounds broke (staleness %d/%d, hot %d/%d)\n",
                max_age_seen, ropts.max_age, ped_fresh, ped_checked);
    ok = false;
  }
  if (gated && uhd_speedup < 2.0) {
    std::printf("FAIL: UHD tile speedup %.2fx < 2x with %d lanes\n",
                uhd_speedup, lanes);
    ok = false;
  } else if (!gated) {
    std::printf("note: < 4 cores — %.2fx speedup is advisory, not gated\n",
                uhd_speedup);
  }
  return ok ? 0 : 1;
}
