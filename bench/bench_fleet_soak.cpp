// Fleet soak: journal replay against a sharded ShardRouter fleet.
//
// The fleet tier's claim is horizontal: if one detection service saturates
// at N cameras, four shards behind a consistent-hash router should serve
// ~4× the aggregate rate with the same per-stream contract (exactly-once,
// in-order), and keep serving through a shard loss. This bench measures all
// of it with the deterministic record/replay load generator (fleet::Journal
// + fleet::Replayer) so every number is a measurement of the serving stack,
// not of load-generator jitter:
//
//   1. Soak table — one journal replayed open-loop at 1×/10×/100× through a
//      4-shard fleet: aggregate fps, shed counts, exactly-once audit.
//   2. Speedup gate — paired replays of the same 8-stream journal against a
//      single 1-worker service and a 4-shard (1 worker each) fleet;
//      acceptance: median fleet/single fps ratio >= 3× (counted on hosts
//      with >= 4 cores; advisory on smaller machines, where the four shard
//      workers time-slice one core and a parallel speedup cannot exist).
//   3. Seeded kill — a fault-injected shard-session loss (fleet.backend.drop)
//      mid-replay: the router must re-shard, redial, drain streams home, and
//      the audit must stay exactly-once with zero duplicates; reports
//      time-to-rebalance (backends_up dip -> recovery).
//   4. Zero-allocation forwarding — the router's steady-state data plane
//      (SubmitFrame in -> tag patch -> CRC re-sign -> forward -> Result
//      match -> deliver) runs under a global operator-new counter against an
//      allocation-free echo backend and raw-byte probe client; after warmup,
//      the counted window must allocate nothing.
//   5. Replay determinism — one journal, two fresh identically-seeded
//      fleets: per-stream result logs must be byte-identical.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/multistream.hpp"
#include "src/fault/injector.hpp"
#include "src/fleet/journal.hpp"
#include "src/fleet/replayer.hpp"
#include "src/fleet/router.hpp"
#include "src/net/service.hpp"
#include "src/net/socket.hpp"
#include "src/net/wire.hpp"
#include "src/obs/report.hpp"
#include "src/util/bytes.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

// Ground-truth heap accounting (same pattern as bench_runtime_throughput):
// the zero-allocation section measures what the router actually allocates.
namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pdet;
using Clock = std::chrono::steady_clock;

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// K shards (same model — a fleet serves one fingerprint) plus the router.
struct Fleet {
  std::vector<std::unique_ptr<net::DetectionService>> shards;
  std::unique_ptr<fleet::ShardRouter> router;

  ~Fleet() { stop(); }
  void stop() {
    if (router) router->stop();
    for (auto& s : shards) s->stop();
  }
};

net::ServiceOptions shard_options(const core::PedestrianDetector& detector,
                                  int max_clients) {
  net::ServiceOptions opts;
  opts.port = 0;
  opts.max_clients = max_clients;
  opts.runtime.workers = 1;
  opts.runtime.queue_capacity = 8;
  opts.runtime.backpressure = runtime::BackpressurePolicy::kBlock;
  // Results must be a pure function of the frame for the determinism gate:
  // block instead of shedding, never degrade under load.
  opts.runtime.scheduler.max_level = 0;
  opts.runtime.hog = detector.config().hog;
  opts.runtime.multiscale = detector.config().multiscale;
  opts.runtime.multiscale.scales = {1.0, 1.26, 1.59};
  return opts;
}

bool start_fleet(Fleet& fleet, const core::PedestrianDetector& detector,
                 int shards, int max_clients) {
  const net::ServiceOptions sopts = shard_options(detector, max_clients);
  fleet::RouterOptions ropts;
  ropts.max_clients = max_clients;
  for (int i = 0; i < shards; ++i) {
    fleet.shards.push_back(
        std::make_unique<net::DetectionService>(detector.model(), sopts));
    std::string error;
    if (!fleet.shards.back()->start(&error)) {
      std::fprintf(stderr, "shard %d start failed: %s\n", i, error.c_str());
      return false;
    }
    ropts.backends.push_back(
        fleet::BackendEndpoint{"127.0.0.1", fleet.shards.back()->port()});
  }
  fleet.router = std::make_unique<fleet::ShardRouter>(ropts);
  std::string error;
  if (!fleet.router->start(&error)) {
    std::fprintf(stderr, "router start failed: %s\n", error.c_str());
    return false;
  }
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (fleet.router->backends_up() < shards && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (fleet.router->backends_up() != shards) {
    std::fprintf(stderr, "fleet never came up\n");
    return false;
  }
  return true;
}

struct SoakRun {
  double fps = 0.0;
  long long submitted = 0;
  long long received = 0;
  long long missed = 0;
  double wall_s = 0.0;
  bool exactly_once = false;
};

SoakRun replay_at(std::uint16_t port, const fleet::Journal& journal,
                  double speed, double drain_ms = 30000.0) {
  fleet::ReplayOptions opts;
  opts.port = port;
  opts.speed = speed;
  opts.drain_ms = drain_ms;
  const fleet::ReplayReport report = fleet::replay_journal(journal, opts);
  SoakRun run;
  run.submitted = report.total_submitted;
  run.received = report.total_received;
  run.missed = report.total_missed;
  run.wall_s = report.wall_seconds;
  run.fps = report.wall_seconds > 0.0
                ? static_cast<double>(report.total_received) /
                      report.wall_seconds
                : 0.0;
  run.exactly_once = report.exactly_once;
  return run;
}

// --- raw wire helpers for the zero-allocation section -----------------------

std::uint32_t load_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32le(p)) |
         (static_cast<std::uint64_t>(load_u32le(p + 4)) << 32);
}

void store_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_u64le(std::uint8_t* p, std::uint64_t v) {
  store_u32le(p, static_cast<std::uint32_t>(v));
  store_u32le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/// Re-sign a mutated wire frame: CRC covers header[0,12) ++ payload.
void resign_frame(std::span<std::uint8_t> frame) {
  const std::uint32_t head = util::crc32(frame.first(12));
  store_u32le(frame.data() + 12, util::crc32(frame.subspan(16), head));
}

bool send_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t sent = 0;
    const net::IoStatus st = net::send_some(fd, data.subspan(off), sent);
    if (st == net::IoStatus::kOk) {
      off += sent;
    } else if (st == net::IoStatus::kWouldBlock) {
      if (!net::wait_writable(fd, 1000.0)) return false;
    } else {
      return false;
    }
  }
  return true;
}

/// Accumulate bytes until `rx` holds one complete wire frame at offset 0;
/// returns its size (0 on connection loss/timeout). Allocation-free: `rx`
/// is a caller-owned fixed buffer, compacted in place.
std::size_t read_frame(int fd, std::vector<std::uint8_t>& rx,
                       std::size_t& rx_size) {
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  for (;;) {
    if (rx_size >= 16) {
      const std::size_t frame_size = 16 + load_u32le(rx.data() + 8);
      if (frame_size <= rx_size) return frame_size;
    }
    if (Clock::now() >= deadline) return 0;
    if (!net::wait_readable(fd, 100.0)) continue;
    std::size_t got = 0;
    const net::IoStatus st = net::recv_some(
        fd, std::span<std::uint8_t>(rx.data() + rx_size, rx.size() - rx_size),
        got);
    if (st == net::IoStatus::kOk) {
      rx_size += got;
    } else if (st != net::IoStatus::kWouldBlock) {
      return 0;
    }
  }
}

void consume_frame(std::vector<std::uint8_t>& rx, std::size_t& rx_size,
                   std::size_t frame_size) {
  std::memmove(rx.data(), rx.data() + frame_size, rx_size - frame_size);
  rx_size -= frame_size;
}

/// Minimal allocation-free detection shard: answers the router's Hello and
/// echoes every SubmitFrame as an empty Result with the tag copied back.
/// Everything it touches in steady state is preallocated, so the global
/// operator-new counter sees only the router.
void run_echo_backend(net::Socket listener, std::atomic<bool>& stop) {
  net::Socket session;
  while (!stop.load(std::memory_order_acquire)) {
    session = listener.accept();
    if (session.valid()) break;
    net::wait_readable(listener.fd(), 50.0);
  }
  if (!session.valid()) return;
  session.set_nodelay(true);

  std::vector<std::uint8_t> ack_bytes;
  {
    net::wire::HelloAck ack;
    ack.model_dim = 1;
    ack.model_crc = 0x5eed;
    ack.server_name = "echo-shard";
    net::wire::encode_hello_ack(ack, ack_bytes);
  }
  std::vector<std::uint8_t> result_bytes;
  net::wire::encode_result(net::wire::Result{}, result_bytes);
  std::vector<std::uint8_t> rx(1u << 20);
  std::size_t rx_size = 0;
  std::uint64_t sequence = 1;

  while (!stop.load(std::memory_order_acquire)) {
    net::wait_readable(session.fd(), 50.0);
    std::size_t got = 0;
    const net::IoStatus st = net::recv_some(
        session.fd(),
        std::span<std::uint8_t>(rx.data() + rx_size, rx.size() - rx_size),
        got);
    if (st == net::IoStatus::kOk) {
      rx_size += got;
    } else if (st != net::IoStatus::kWouldBlock) {
      return;
    }
    while (rx_size >= 16) {
      const std::size_t frame_size = 16 + load_u32le(rx.data() + 8);
      if (frame_size > rx_size) break;
      const auto type = static_cast<net::wire::MsgType>(rx[5]);
      if (type == net::wire::MsgType::kHello) {
        if (!send_all(session.fd(), ack_bytes)) return;
      } else if (type == net::wire::MsgType::kSubmitFrame) {
        // Result payload: sequence u64 @+0, tag u64 @+8 (frame offsets
        // +16/+24); SubmitFrame payload leads with the tag at +16.
        store_u64le(result_bytes.data() + 16, sequence++);
        store_u64le(result_bytes.data() + 24, load_u64le(rx.data() + 16));
        resign_frame(result_bytes);
        if (!send_all(session.fd(), result_bytes)) return;
      }
      consume_frame(rx, rx_size, frame_size);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_fleet_soak",
                "journal replay soak against a sharded fleet");
  cli.add_int("streams", 8, "camera streams in the journal");
  cli.add_int("frames", 12, "frames per stream (soak + speedup sections)");
  cli.add_int("kill-frames", 24, "frames per stream in the seeded-kill run");
  cli.add_int("reps", 3, "paired speedup measurements (median of ratios)");
  cli.add_int("chaos-seed", 31337, "seed for the shard-kill fault plan");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  obs::set_metrics_enabled(true);

  const int streams = cli.get_int("streams");
  const int frames = cli.get_int("frames");
  bool accept = true;

  std::printf("training detector...\n");
  core::PedestrianDetector detector;
  detector.train(dataset::make_window_set(616, 250, 500));

  // One journal pins the whole workload; the scene renderer's floor is
  // 64x128, and small frames keep the soak about the serving stack.
  dataset::MultiStreamOptions mopts;
  mopts.scene.width = 160;
  mopts.scene.height = 128;
  mopts.scene.camera.focal_px = 300.0;
  mopts.min_pedestrians = 0;
  mopts.max_pedestrians = 2;
  const fleet::Journal journal =
      fleet::capture_journal(2026, mopts, streams, frames, 25.0);

  // --- 1. soak table: one fleet, three timeline speeds ------------------
  std::printf("\nreplay soak: %d streams x %d frames through 4 shards\n",
              streams, frames);
  {
    Fleet fleet;
    if (!start_fleet(fleet, detector, 4, streams + 1)) return 1;
    util::Table table(
        {"speed", "fps", "received/submitted", "shed", "wall s", "exactly once"});
    for (const double speed : {1.0, 10.0, 100.0}) {
      const SoakRun run = replay_at(fleet.router->port(), journal, speed);
      table.add_row({util::to_fixed(speed, 0) + "x",
                     util::to_fixed(run.fps, 1),
                     std::to_string(run.received) + "/" +
                         std::to_string(run.submitted),
                     std::to_string(run.missed),
                     util::to_fixed(run.wall_s, 2),
                     run.exactly_once ? "yes" : "NO"});
      accept = accept && run.exactly_once && run.received > 0;
      obs::gauge_set("fleet.bench.soak.speed_" +
                         std::to_string(static_cast<int>(speed)) + ".fps",
                     run.fps);
    }
    std::fputs(table.to_string().c_str(), stdout);
  }

  // --- 2. speedup gate: 4 shards vs one service, paired replays ---------
  // Both sides replay flat-out (100x of a 25 fps capture saturates either
  // target), workers = 1 per shard, so the ratio isolates the horizontal
  // scale-out. Paired runs + median of ratios absorb machine noise.
  const int reps = cli.get_int("reps");
  std::printf("\nspeedup: 4-shard fleet vs single service, %d paired runs\n",
              reps);
  double speedup = 0.0;
  bool speedup_streams_ok = true;
  {
    net::ServiceOptions single_opts = shard_options(detector, streams + 1);
    net::DetectionService single(detector.model(), single_opts);
    std::string error;
    if (!single.start(&error)) {
      std::fprintf(stderr, "single service start failed: %s\n", error.c_str());
      return 1;
    }
    Fleet fleet;
    if (!start_fleet(fleet, detector, 4, streams + 1)) return 1;
    std::vector<double> ratios;
    util::Table table({"rep", "single fps", "fleet fps", "ratio"});
    for (int r = 0; r < reps; ++r) {
      const SoakRun base = replay_at(single.port(), journal, 100.0);
      const SoakRun sharded = replay_at(fleet.router->port(), journal, 100.0);
      const double ratio = base.fps > 0.0 ? sharded.fps / base.fps : 0.0;
      ratios.push_back(ratio);
      table.add_row({std::to_string(r), util::to_fixed(base.fps, 1),
                     util::to_fixed(sharded.fps, 1),
                     util::to_fixed(ratio, 2)});
      speedup_streams_ok = speedup_streams_ok && base.exactly_once &&
                           sharded.exactly_once;
    }
    std::fputs(table.to_string().c_str(), stdout);
    speedup = median(ratios);
    single.stop();
  }
  const unsigned cores = std::thread::hardware_concurrency();
  const bool gate_speedup = cores >= 4;
  const bool speedup_ok = speedup >= 3.0;
  std::printf("median speedup %.2fx (acceptance: >= 3x with exactly-once "
              "streams)%s: %s\n",
              speedup,
              gate_speedup ? ""
                           : " [advisory: < 4 cores, shards time-slice]",
              speedup_ok && speedup_streams_ok ? "PASS"
              : gate_speedup                   ? "FAIL"
                                               : "advisory-fail");
  obs::gauge_set("fleet.bench.speedup_4shard", speedup);
  accept = accept && speedup_streams_ok && (speedup_ok || !gate_speedup);

  // --- 3. seeded shard kill mid-replay ----------------------------------
  std::printf("\nseeded kill: fleet.backend.drop mid-replay, 4 shards\n");
  {
    const fleet::Journal kill_journal = fleet::capture_journal(
        99, mopts, streams, cli.get_int("kill-frames"), 25.0);
    Fleet fleet;
    if (!start_fleet(fleet, detector, 4, streams + 1)) return 1;

    fault::Plan plan;
    plan.seed = static_cast<std::uint64_t>(cli.get_int("chaos-seed"));
    // skip lets the 4 session handshakes and the first traffic through so
    // the kill lands mid-replay; one fire keeps the measurement crisp.
    plan.with("fleet.backend.drop", 1.0, /*param=*/0,
              /*skip=*/static_cast<long long>(kill_journal.records.size() / 3),
              /*max_fires=*/1);
    fault::Injector::instance().arm(plan);

    // Sample backends_up around the replay: the dip and the recovery bound
    // the router's redial + re-shard + drain-home cycle.
    std::atomic<bool> watching{true};
    std::atomic<double> down_at_s{-1.0};
    std::atomic<double> up_at_s{-1.0};
    const auto watch_t0 = Clock::now();
    std::thread watcher([&] {
      bool was_down = false;
      while (watching.load(std::memory_order_acquire)) {
        const int up = fleet.router->backends_up();
        const double t =
            std::chrono::duration<double>(Clock::now() - watch_t0).count();
        if (up < 4 && !was_down) {
          was_down = true;
          down_at_s.store(t);
        } else if (up == 4 && was_down && up_at_s.load() < 0.0) {
          up_at_s.store(t);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    // Tail sheds (a frame shed with nothing after it on its stream) are
    // invisible to client-side gap detection, so the drain is bounded
    // instead of waiting for a count that may never close.
    const SoakRun run =
        replay_at(fleet.router->port(), kill_journal, 10.0, 5000.0);
    const long long fires = fault::Injector::instance().fires(
        "fleet.backend.drop");
    fault::Injector::instance().disarm();
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    while (fleet.router->backends_up() < 4 && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    watching.store(false, std::memory_order_release);
    watcher.join();

    const fleet::RouterStats rs = fleet.router->stats();
    const bool recovered = fleet.router->backends_up() == 4;
    const double rebalance_s =
        (down_at_s.load() >= 0.0 && up_at_s.load() >= 0.0)
            ? up_at_s.load() - down_at_s.load()
            : -1.0;
    std::printf("  kill fired %lld time(s); sessions lost %lld, reshards "
                "%lld, stream moves %lld\n",
                fires, rs.backend_sessions_lost, rs.reshards,
                rs.stream_moves);
    std::printf("  delivered %lld/%lld (shed %lld), duplicates suppressed "
                "%lld, time-to-rebalance %s\n",
                run.received, run.submitted, run.missed,
                rs.duplicates_suppressed,
                rebalance_s >= 0.0
                    ? (util::to_fixed(1000.0 * rebalance_s, 0) + " ms").c_str()
                    : "n/a");
    const bool kill_ok = fires == 1 && run.exactly_once && recovered &&
                         rs.backend_sessions_lost >= 1 &&
                         rs.duplicates_suppressed == 0 &&
                         run.received + run.missed <= run.submitted;
    std::printf("  exactly-once through the kill + full recovery: %s\n",
                kill_ok ? "PASS" : "FAIL");
    obs::gauge_set("fleet.bench.kill.rebalance_s",
                   rebalance_s >= 0.0 ? rebalance_s : 0.0);
    obs::gauge_set("fleet.bench.kill.shed",
                   static_cast<double>(run.missed));
    accept = accept && kill_ok;
  }

  // --- 4. zero-allocation steady-state forwarding -----------------------
  // Echo backend + raw-byte probe client are allocation-free by
  // construction, so the counted window measures the router alone: receive,
  // validate, tag-patch, re-sign, forward, match, deliver — 0 allocations.
  std::printf("\nzero-allocation forwarding: counted operator new calls\n");
  {
    std::string error;
    net::Socket listener = net::Socket::listen_tcp("127.0.0.1", 0, 4, &error);
    if (!listener.valid()) {
      std::fprintf(stderr, "echo listen failed: %s\n", error.c_str());
      return 1;
    }
    const std::uint16_t echo_port = listener.local_port();
    std::atomic<bool> stop_echo{false};
    std::thread echo(run_echo_backend, std::move(listener),
                     std::ref(stop_echo));

    fleet::RouterOptions ropts;
    ropts.backends.push_back(fleet::BackendEndpoint{"127.0.0.1", echo_port});
    ropts.max_clients = 2;
    fleet::ShardRouter router(ropts);
    if (!router.start(&error)) {
      std::fprintf(stderr, "router start failed: %s\n", error.c_str());
      return 1;
    }
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    while (router.backends_up() < 1 && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    net::Socket probe =
        net::Socket::connect_tcp("127.0.0.1", router.port(), 1000.0, &error);
    bool alloc_ok = false;
    long long counted = -1;
    if (probe.valid() && router.backends_up() == 1) {
      probe.set_nodelay(true);
      std::vector<std::uint8_t> hello;
      net::wire::Hello h;
      h.client_name = "alloc-probe";
      net::wire::encode_hello(h, hello);
      std::vector<std::uint8_t> rx(1u << 16);
      std::size_t rx_size = 0;
      std::size_t frame_size = 0;
      if (send_all(probe.fd(), hello) &&
          (frame_size = read_frame(probe.fd(), rx, rx_size)) > 0) {
        consume_frame(rx, rx_size, frame_size);
        imgproc::ImageF img(64, 48);
        util::Rng rng(7);
        for (int y = 0; y < img.height(); ++y) {
          for (int x = 0; x < img.width(); ++x) {
            img.at(x, y) = static_cast<float>(rng.uniform());
          }
        }
        std::vector<std::uint8_t> frame;
        net::wire::encode_submit_frame(net::wire::SubmitFrame{0, img}, frame);

        // Serial ping-pong keeps exactly one frame in flight: past warmup
        // every buffer, ring slot and arena block has reached steady state.
        constexpr int kWarmup = 200;
        constexpr int kCounted = 500;
        bool io_ok = true;
        for (int i = 0; i < kWarmup + kCounted && io_ok; ++i) {
          if (i == kWarmup) {
            g_heap_allocs.store(0, std::memory_order_relaxed);
          }
          store_u64le(frame.data() + 16, static_cast<std::uint64_t>(i));
          resign_frame(frame);
          io_ok = send_all(probe.fd(), frame) &&
                  (frame_size = read_frame(probe.fd(), rx, rx_size)) > 0;
          if (io_ok) consume_frame(rx, rx_size, frame_size);
        }
        if (io_ok) {
          counted = g_heap_allocs.load(std::memory_order_relaxed);
          alloc_ok = counted == 0;
        }
        std::printf("  %d counted round-trips through the router: %lld "
                    "allocations\n",
                    kCounted, counted);
      }
    }
    probe.close();
    router.stop();
    stop_echo.store(true, std::memory_order_release);
    echo.join();
    std::printf("  steady-state forwarding allocation-free: %s\n",
                alloc_ok ? "PASS" : "FAIL");
    obs::gauge_set("fleet.bench.steady_allocs",
                   counted >= 0 ? static_cast<double>(counted) : -1.0);
    accept = accept && alloc_ok;
  }

  // --- 5. replay determinism --------------------------------------------
  std::printf("\nreplay determinism: one journal, two fresh fleets\n");
  {
    const fleet::Journal small = fleet::capture_journal(7, mopts, 4, 6, 25.0);
    fleet::ReplayOptions opts;
    opts.speed = 10.0;
    opts.drain_ms = 30000.0;
    opts.collect_results = true;
    std::vector<std::vector<std::uint8_t>> logs[2];
    bool once[2] = {false, false};
    for (int run = 0; run < 2; ++run) {
      Fleet fleet;
      if (!start_fleet(fleet, detector, 2, 5)) return 1;
      opts.port = fleet.router->port();
      const fleet::ReplayReport report = fleet::replay_journal(small, opts);
      once[run] = report.exactly_once;
      for (const fleet::StreamReplay& s : report.streams) {
        logs[run].push_back(s.result_log);
      }
    }
    const bool deterministic = once[0] && once[1] && logs[0] == logs[1];
    std::printf("  per-stream result logs byte-identical: %s\n",
                deterministic ? "PASS" : "FAIL");
    obs::gauge_set("fleet.bench.replay_deterministic",
                   deterministic ? 1.0 : 0.0);
    accept = accept && deterministic;
  }

  if (!obs::report_from_cli(cli)) return 1;
  std::printf("\noverall: %s\n", accept ? "PASS" : "FAIL");
  return accept ? 0 : 1;
}
