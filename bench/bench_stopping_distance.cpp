// Experiment E6 — the paper's Section 1 driver-assistance analysis.
//
// Reproduces the stopping-distance arithmetic that motivates the system
// requirements (PRT 1.5 s, deceleration 6.5 m/s^2, braking 14.84 m / 29.16 m
// at 50 / 70 km/h, total 35.68 m / 58.23 m, hence a ~20-60 m detection
// band), then maps that band through the camera model to the detection
// scales the hardware must provide, and to the frame-rate requirement.
#include <cstdio>

#include "src/core/das.hpp"
#include "src/hwsim/timing.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace pdet;
  using namespace pdet::core;

  std::printf("E6 / paper Section 1: stopping distance and detection band\n\n");

  util::Table table({"speed km/h", "reaction m", "braking m", "total m",
                     "paper total m"});
  const das::StoppingParams params;  // PRT 1.5 s, 6.5 m/s^2
  struct Row {
    double speed;
    const char* paper;
  };
  for (const Row row : {Row{30, "-"}, {50, "35.68"}, {70, "58.23"}, {90, "-"}}) {
    table.add_row({util::to_fixed(row.speed, 0),
                   util::to_fixed(das::reaction_distance_m(row.speed, params), 2),
                   util::to_fixed(das::braking_distance_m(row.speed, params), 2),
                   util::to_fixed(das::total_stopping_distance_m(row.speed, params), 2),
                   row.paper});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\n--- required detection scales across the 20-60 m band ---\n");
  dataset::SceneCamera camera;  // focal 1000 px, person 1.7 m
  util::Table scales({"distance m", "person px", "required scale"});
  for (const double d : {10.0, 15.0, 20.0, 30.0, 40.0, 60.0}) {
    scales.add_row({util::to_fixed(d, 0),
                    util::to_fixed(camera.person_px(d), 1),
                    util::to_fixed(das::required_scale(camera, d), 2)});
  }
  std::fputs(scales.to_string().c_str(), stdout);

  const das::CoverageBand band = das::coverage_band(camera, {1.0, 2.0});
  std::printf(
      "\ntwo-scale hardware (scales 1.0 and 2.0) covers %.1f m .. %.1f m with "
      "this camera;\nlonger focal lengths shift the band outward (f = 3500 px "
      "covers %.1f m .. %.1f m,\nspanning the paper's 20-60 m requirement).\n",
      band.near_m, band.far_m,
      das::coverage_band({3500.0, 1.4, 1.7}, {1.0, 2.0}).near_m,
      das::coverage_band({3500.0, 1.4, 1.7}, {1.0, 2.0}).far_m);

  // Frame-rate requirement: distance traveled per frame at 60 fps.
  const hwsim::TimingModel timing;
  std::printf(
      "\nat 70 km/h the car moves %.2f m between frames at %.1f fps — the\n"
      "60 fps HDTV rate keeps per-frame travel under 1/3 m, the basis of the\n"
      "paper's real-time requirement.\n",
      70.0 / 3.6 / timing.max_fps(), timing.max_fps());
  return 0;
}
