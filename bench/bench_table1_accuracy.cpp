// Experiment E1 — reproduces paper Table 1.
//
// "Detection accuracy and number of true positives, and true negatives for
// different scales of original image and HOG feature, examined on INRIA
// dataset." We run the identical protocol (Figure 3a vs 3b) on the synthetic
// INRIA substitute: train a linear SVM at 64x128, up-sample the test set by
// 1.1 .. 1.5 (plus the >1.5 tail for the degradation claim), classify each
// scaled window by (a) image-resize and (b) HOG-feature-resize, and print
// accuracy / TP / TN per scale and method.
//
// Expected shape vs the paper: both methods stay within a couple of points
// of the base accuracy for s <= 1.5, with the feature method competitive
// (the paper found it slightly ahead up to ~1.5) and falling behind as the
// scale grows beyond 1.5.
#include <algorithm>
#include <cstdio>

#include "src/core/scale_experiment.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("bench_table1_accuracy", "Reproduce paper Table 1");
  cli.add_int("train-pos", 500, "positive training windows");
  cli.add_int("train-neg", 1000, "negative training windows");
  cli.add_int("test-pos", 1126, "positive test windows (paper: 1126)");
  cli.add_int("test-neg", 4530, "negative test windows (paper: 4530)");
  cli.add_flag("quick", "small test set for smoke runs");
  cli.add_string("csv", "", "optional CSV output path");
  if (!cli.parse(argc, argv)) return 1;

  util::set_default_log_level(util::LogLevel::kWarn);
  core::ScaleExperimentConfig config;
  config.train_pos = cli.get_int("train-pos");
  config.train_neg = cli.get_int("train-neg");
  config.test_pos = cli.get_flag("quick") ? 150 : cli.get_int("test-pos");
  config.test_neg = cli.get_flag("quick") ? 300 : cli.get_int("test-neg");
  config.scales = {1.1, 1.2, 1.3, 1.4, 1.5, 1.75, 2.0};

  std::printf("E1 / paper Table 1: multi-scale accuracy, image vs HOG pyramid\n");
  std::printf("train: %d pos / %d neg   test: %d pos / %d neg\n\n",
              config.train_pos, config.train_neg, config.test_pos,
              config.test_neg);

  util::Timer timer;
  const core::ScaleExperimentResult result = core::run_scale_experiment(config);

  util::Table table({"Scale", "Acc(img)%", "Acc(HOG)%", "TP(img)", "TP(HOG)",
                     "TN(img)", "TN(HOG)"});
  table.add_row({"1.0", util::to_fixed(result.base.accuracy * 100, 2),
                 util::to_fixed(result.base.accuracy * 100, 2),
                 util::format("%d", result.base.true_pos),
                 util::format("%d", result.base.true_pos),
                 util::format("%d", result.base.true_neg),
                 util::format("%d", result.base.true_neg)});
  for (const auto& row : result.rows) {
    table.add_row({util::to_fixed(row.scale, 2),
                   util::to_fixed(row.image.accuracy * 100, 2),
                   util::to_fixed(row.feature.accuracy * 100, 2),
                   util::format("%d", row.image.true_pos),
                   util::format("%d", row.feature.true_pos),
                   util::format("%d", row.image.true_neg),
                   util::format("%d", row.feature.true_neg)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Summarize the paper's two claims.
  double worst_gap_low = 0.0;   // image - feature for s <= 1.5
  double gap_high = 0.0;        // image - feature beyond 1.5
  for (const auto& row : result.rows) {
    const double gap = row.image.accuracy - row.feature.accuracy;
    if (row.scale <= 1.5001) {
      worst_gap_low = std::max(worst_gap_low, gap);
    } else {
      gap_high = std::max(gap_high, gap);
    }
  }
  std::printf(
      "\npaper claim 1 (feature pyramid competitive for s <= 1.5): worst "
      "accuracy gap = %.2f%% (paper: feature method ahead by up to ~0.9%%)\n",
      worst_gap_low * 100);
  std::printf(
      "paper claim 2 (degradation beyond 1.5): max gap for s > 1.5 = %.2f%%\n",
      gap_high * 100);
  std::printf("paper claim 3 (overall cost <= 2%%): max accuracy drop vs base "
              "= %.2f%%\n",
              (result.base.accuracy -
               [&] {
                 double worst = 1.0;
                 for (const auto& row : result.rows) {
                   if (row.scale <= 1.5001) {
                     worst = std::min(worst, row.feature.accuracy);
                   }
                 }
                 return worst;
               }()) *
                  100);
  std::printf("elapsed: %.1f s\n", timer.seconds());

  const std::string csv = cli.get_string("csv");
  if (!csv.empty() && !table.write_csv(csv)) {
    std::fprintf(stderr, "failed to write %s\n", csv.c_str());
    return 1;
  }
  return 0;
}
