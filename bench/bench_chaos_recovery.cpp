// Chaos recovery: time-to-healthy for the full TCP serving stack under
// seeded fault schedules.
//
// PR 5's robustness claim is quantitative, not just existential: after a
// burst of injected faults (short writes, EINTRs, send latency, worker
// exceptions, a stalled engine) the service must not merely survive — it
// must walk back to kHealthy within a bounded number of clean frames, with
// every frame submitted during the chaos window accounted for exactly once
// on both sides of the wire. This bench drives a net::DetectionService over
// loopback TCP through warmup -> armed chaos window -> disarm, then measures
// how many clean frames and how many milliseconds the health state machine
// needs to report kHealthy again (polled remotely via StatsQuery, the same
// view a fleet supervisor would use). Each row is one fixed seed, so a
// regression in recovery behaviour reproduces byte-for-byte.
//
// Acceptance (checked, reflected in the exit code): every seed fires at
// least one fault, recovers to kHealthy within the recovery-frame budget,
// keeps per-stream ordering with zero protocol errors, and satisfies the
// exactly-once identity (submitted == completed + dropped + errors) in both
// the remote StatsReport and the server-side ServiceStats.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/fault/injector.hpp"
#include "src/net/client.hpp"
#include "src/net/service.hpp"
#include "src/obs/report.hpp"
#include "src/runtime/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace pdet;
using Clock = std::chrono::steady_clock;

imgproc::ImageF make_frame(int width, int height, std::uint64_t seed) {
  util::Rng rng(seed);
  imgproc::ImageF img(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      img.at(x, y) = static_cast<float>(rng.uniform());
    }
  }
  return img;
}

svm::LinearModel make_model(const hog::HogParams& params, std::uint64_t seed) {
  util::Rng rng(seed);
  svm::LinearModel model;
  model.weights.resize(static_cast<std::size_t>(params.descriptor_size()));
  for (float& w : model.weights) {
    w = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  model.bias = -0.25f;
  return model;
}

/// The recoverable-fault schedule from the chaos harness (tests/test_fault):
/// IO-level noise on both directions plus worker exceptions and one long
/// stall to exercise the watchdog. No connection resets — reconnection is a
/// different experiment; this one measures in-band recovery.
fault::Plan chaos_plan(std::uint64_t seed) {
  fault::Plan plan;
  plan.seed = seed;
  plan.with("net.send.short", 0.05, /*param=*/3);
  plan.with("net.recv.short", 0.05, /*param=*/7);
  plan.with("net.send.eintr", 0.05);
  plan.with("net.recv.eintr", 0.05);
  plan.with("net.send.latency", 0.02, /*param=*/1);
  plan.with("runtime.engine.fault", 0.08);
  plan.with("runtime.worker.stall", 0.02, /*param=*/1200);
  return plan;
}

struct SeedOutcome {
  std::uint64_t seed = 0;
  long long fires = 0;
  long long worker_faults = 0;
  long long worker_stalls = 0;
  long long workers_replaced = 0;
  long long poison_frames = 0;
  long long flight_triggers = 0;  ///< flight-recorder dumps fired
  std::uint32_t final_health = 0;  ///< remote health_state after the run
  long long chaos_errors = 0;   ///< kError results inside the chaos window
  int recovery_frames = -1;     ///< clean frames until kHealthy (-1 = never)
  double recovery_ms = 0.0;     ///< wall time from disarm to kHealthy
  bool recovered = false;
  bool exactly_once = true;
  bool in_order = true;
  long long protocol_errors = 0;
  std::string error;  ///< non-empty aborts the run
};

SeedOutcome run_seed(std::uint64_t seed, int chaos_frames, int recovery_budget,
                     const std::string& flight_dump) {
  SeedOutcome out;
  out.seed = seed;

  net::ServiceOptions opts;
  opts.port = 0;
  opts.runtime.workers = 2;
  opts.runtime.queue_capacity = 8;
  opts.runtime.backpressure = runtime::BackpressurePolicy::kBlock;
  opts.runtime.scheduler.max_level = 0;
  opts.runtime.multiscale.scales = {1.0};
  opts.runtime.stall_timeout_ms = 500.0;
  opts.runtime.watchdog_poll_ms = 10.0;
  opts.runtime.recovery_frames = 8;
  if (!flight_dump.empty()) {
    // The black box: poison frames / quarantines during the chaos window
    // dump the per-stream timeline rings for postmortem reconstruction.
    opts.runtime.flight_dump_path = flight_dump + "-seed" +
                                    std::to_string(seed);
  }
  const svm::LinearModel model = make_model(opts.runtime.hog, seed);
  net::DetectionService service(model, opts);
  if (!service.start(&out.error)) return out;

  net::ClientOptions copts;
  copts.port = service.port();
  copts.name = "chaos-bench";
  net::Client client(copts);
  if (!client.connect()) {
    out.error = "connect: " + client.last_error();
    service.stop();
    return out;
  }

  const auto roundtrip = [&](std::uint64_t frame_seed) {
    net::wire::Result result;
    if (!client.submit(make_frame(128, 96, frame_seed))) return false;
    return client.next_result(result, 60000.0);
  };

  // Warmup: prove a clean baseline before arming anything.
  constexpr int kWarmup = 4;
  long long submitted = 0;
  for (int f = 0; f < kWarmup; ++f, ++submitted) {
    if (!roundtrip(seed * 1000 + static_cast<std::uint64_t>(f))) {
      out.error = "warmup: " + client.last_error();
      service.stop();
      return out;
    }
  }

  // Chaos window: submit the burst armed, collect every result (ok or
  // error — a poison frame still yields exactly one kError result).
  {
    fault::ScopedPlan armed(chaos_plan(seed));
    net::wire::Result result;
    for (int f = 0; f < chaos_frames; ++f, ++submitted) {
      if (!client.submit(make_frame(
              128, 96, seed * 1000 + 100 + static_cast<std::uint64_t>(f)))) {
        out.error = "chaos submit: " + client.last_error();
        service.stop();
        return out;
      }
    }
    for (int f = 0; f < chaos_frames; ++f) {
      if (!client.next_result(result, 60000.0)) {
        out.error = "chaos result: " + client.last_error();
        service.stop();
        return out;
      }
      if (result.status == runtime::FrameStatus::kError) ++out.chaos_errors;
    }
  }
  out.fires = fault::Injector::instance().total_fires();

  // Recovery: disarmed clean frames, remote health polled after each one.
  // The metric is the fleet supervisor's view — StatsQuery over the same
  // connection — not a peek at server internals.
  const auto disarm_at = Clock::now();
  net::wire::StatsReport report;
  for (int f = 0; f < recovery_budget; ++f) {
    if (!client.query_stats(report, 60000.0)) {
      out.error = "stats: " + client.last_error();
      service.stop();
      return out;
    }
    if (report.health_state ==
        static_cast<std::uint32_t>(runtime::HealthState::kHealthy)) {
      out.recovered = true;
      out.recovery_frames = f;
      break;
    }
    if (!roundtrip(seed * 1000 + 500 + static_cast<std::uint64_t>(f))) {
      out.error = "recovery: " + client.last_error();
      service.stop();
      return out;
    }
    ++submitted;
  }
  out.recovery_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - disarm_at)
          .count();

  // Exactly-once, remote view: every frame this client pushed shows up as
  // completed or errored (kBlock queue + no deadline => no drops).
  if (!client.query_stats(report, 60000.0)) {
    out.error = "final stats: " + client.last_error();
    service.stop();
    return out;
  }
  out.exactly_once =
      report.submitted == static_cast<std::uint64_t>(submitted) &&
      report.completed + report.frames_error == report.submitted;
  out.final_health = report.health_state;
  out.in_order = client.in_order();
  out.protocol_errors = client.protocol_errors();
  client.disconnect();
  service.stop();

  // Exactly-once, server side, after full drain.
  const net::ServiceStats stats = service.stats();
  out.exactly_once = out.exactly_once &&
                     stats.runtime.submitted == submitted &&
                     stats.runtime.completed + stats.runtime.dropped_queue +
                             stats.runtime.dropped_deadline +
                             stats.runtime.errors ==
                         stats.runtime.submitted &&
                     stats.frames_received == submitted &&
                     stats.results_sent == submitted;
  out.worker_faults = stats.runtime.worker_faults;
  out.worker_stalls = stats.runtime.worker_stalls;
  out.workers_replaced = stats.runtime.workers_replaced;
  out.poison_frames = stats.runtime.poison_frames;
  out.flight_triggers = stats.runtime.flight_triggers;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_chaos_recovery",
                "time-to-healthy after seeded fault bursts over loopback TCP");
  cli.add_int("frames", 32, "frames per seed inside the armed chaos window");
  cli.add_int("budget", 32, "max clean frames allowed to reach healthy");
  cli.add_string("flight-dump", "",
                 "flight-recorder dump prefix (one -seedN.json/.txt pair per "
                 "seed that trips a trigger; empty = off)");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  obs::set_metrics_enabled(true);
  util::Timer timer;

  const int chaos_frames = cli.get_int("frames");
  const int budget = cli.get_int("budget");
  const std::vector<std::uint64_t> seeds = {11, 101, 2026, 40013};
  std::printf("chaos window %d frames/seed, recovery budget %d clean frames, "
              "%zu seeds\n\n",
              chaos_frames, budget, seeds.size());

  const std::string flight_dump = cli.get_string("flight-dump");
  util::Table table({"seed", "fires", "faults", "stalls", "replaced",
                     "poison", "flight", "err frames", "recovery frames",
                     "recovery ms", "healthy"});
  bool accept = true;
  long long worker_faults_total = 0;
  long long poison_frames_total = 0;
  double time_to_healthy_ms_max = 0.0;
  std::uint32_t final_health = 0;
  for (const std::uint64_t seed : seeds) {
    const SeedOutcome r = run_seed(seed, chaos_frames, budget, flight_dump);
    if (!r.error.empty()) {
      std::fprintf(stderr, "seed %llu failed: %s\n",
                   static_cast<unsigned long long>(seed), r.error.c_str());
      return 1;
    }
    table.add_row({std::to_string(seed), std::to_string(r.fires),
                   std::to_string(r.worker_faults),
                   std::to_string(r.worker_stalls),
                   std::to_string(r.workers_replaced),
                   std::to_string(r.poison_frames),
                   std::to_string(r.flight_triggers),
                   std::to_string(r.chaos_errors),
                   r.recovered ? std::to_string(r.recovery_frames) : "> budget",
                   util::to_fixed(r.recovery_ms, 1),
                   r.recovered ? "yes" : "NO"});
    accept = accept && r.recovered && r.fires > 0 && r.exactly_once &&
             r.in_order && r.protocol_errors == 0;
    const std::string prefix =
        "fault.bench.seed_" + std::to_string(seed);
    obs::gauge_set(prefix + ".fires", static_cast<double>(r.fires));
    obs::gauge_set(prefix + ".worker_faults",
                   static_cast<double>(r.worker_faults));
    obs::gauge_set(prefix + ".recovery_frames",
                   static_cast<double>(r.recovery_frames));
    obs::gauge_set(prefix + ".recovery_ms", r.recovery_ms);
    obs::gauge_set(prefix + ".exactly_once", r.exactly_once ? 1.0 : 0.0);
    obs::gauge_set(prefix + ".poison_frames",
                   static_cast<double>(r.poison_frames));
    obs::gauge_set(prefix + ".flight_triggers",
                   static_cast<double>(r.flight_triggers));
    obs::gauge_set(prefix + ".health", static_cast<double>(r.final_health));
    worker_faults_total += r.worker_faults;
    poison_frames_total += r.poison_frames;
    time_to_healthy_ms_max = std::max(time_to_healthy_ms_max, r.recovery_ms);
    final_health = r.final_health;
  }
  // Fleet-level rollup — the fields a dashboard scrapes without knowing the
  // seed list (runtime.health mirrors the last seed's remote view; 0 means
  // every run ended kHealthy).
  obs::gauge_set("runtime.health", static_cast<double>(final_health));
  obs::gauge_set("fault.bench.worker_faults",
                 static_cast<double>(worker_faults_total));
  obs::gauge_set("fault.bench.poison_frames",
                 static_cast<double>(poison_frames_total));
  obs::gauge_set("fault.bench.time_to_healthy_ms", time_to_healthy_ms_max);
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nall seeds fired, recovered within budget, stayed in order "
              "with exactly-once accounting: %s\n",
              accept ? "PASS" : "FAIL");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  obs::gauge_set("fault.bench.accept", accept ? 1.0 : 0.0);
  if (!obs::report_from_cli(cli)) return 1;
  return accept ? 0 : 1;
}
