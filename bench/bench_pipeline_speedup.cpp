// Experiment E5 — the paper's computational-complexity claim (Sections 4-5):
// moving the scaling stage after feature extraction "reduces the
// computational complexity significantly" because the expensive histogram
// generation runs once instead of once per pyramid level.
//
// We measure the software realization directly: wall-clock per frame for the
// conventional image pyramid (Figure 3a) vs the proposed feature pyramid
// (Figure 3b) at increasing scale counts, with the per-stage split, plus the
// design-choice ablations DESIGN.md lists (block norm scheme and feature
// interpolation kernel vs accuracy).
#include <cstdio>
#include <vector>

#include "src/core/model_pyramid.hpp"
#include "src/core/pedestrian_detector.hpp"
#include "src/core/scale_experiment.hpp"
#include "src/detect/engine.hpp"
#include "src/dataset/scene.hpp"
#include "src/dataset/synth.hpp"
#include "src/hog/feature_scale.hpp"
#include "src/hwsim/timing.hpp"
#include "src/obs/report.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace pdet;

enum class Strategy { kImage, kFeature, kHybrid };

double time_pyramid(const imgproc::ImageF& frame, const hog::HogParams& params,
                    Strategy strategy, const std::vector<double>& scales,
                    int repeats) {
  util::Timer timer;
  for (int r = 0; r < repeats; ++r) {
    switch (strategy) {
      case Strategy::kFeature: {
        hog::FeaturePyramidOptions opts;
        opts.scales = scales;
        const auto levels = hog::build_feature_pyramid(frame, params, opts);
        if (levels.empty()) return -1;
        break;
      }
      case Strategy::kImage: {
        hog::ImagePyramidOptions opts;
        opts.scales = scales;
        const auto levels = hog::build_image_pyramid(frame, params, opts);
        if (levels.empty()) return -1;
        break;
      }
      case Strategy::kHybrid: {
        hog::HybridPyramidOptions opts;
        opts.scales = scales;
        const auto levels = hog::build_hybrid_pyramid(frame, params, opts);
        if (levels.empty()) return -1;
        break;
      }
    }
  }
  return timer.milliseconds() / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_pipeline_speedup",
                "Feature pyramid vs image pyramid cost (paper Sections 4-5)");
  cli.add_int("width", 960, "frame width");
  cli.add_int("height", 536, "frame height (multiple of the 8-px cell)");
  cli.add_int("repeats", 3, "timing repeats per config");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  // Benches always aggregate metrics — the per-stage JSON below rides on them.
  obs::set_metrics_enabled(true);

  const int width = cli.get_int("width");
  const int height = cli.get_int("height");
  const int repeats = cli.get_int("repeats");

  util::Rng rng(404);
  dataset::SceneOptions sopts;
  sopts.width = width;
  sopts.height = height;
  const dataset::Scene scene = dataset::render_scene(rng, sopts);
  const hog::HogParams params;

  std::printf("E5: pyramid construction cost, %dx%d frame\n\n", width, height);
  util::Table table({"scales", "image pyr ms", "hybrid [4] ms", "feature pyr ms",
                     "speedup"});
  const std::vector<std::vector<double>> scale_sets{
      {1.0, 2.0},                            // the paper's hardware config
      {1.0, 1.3, 1.6, 2.0},
      {1.0, 1.2, 1.4, 1.6, 1.8, 2.0},
      {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0},
  };
  for (const auto& scales : scale_sets) {
    const double img_ms =
        time_pyramid(scene.image, params, Strategy::kImage, scales, repeats);
    const double hyb_ms =
        time_pyramid(scene.image, params, Strategy::kHybrid, scales, repeats);
    const double feat_ms =
        time_pyramid(scene.image, params, Strategy::kFeature, scales, repeats);
    table.add_row({util::format("%zu", scales.size()),
                   util::to_fixed(img_ms, 1), util::to_fixed(hyb_ms, 1),
                   util::to_fixed(feat_ms, 1),
                   util::to_fixed(img_ms / feat_ms, 2) + "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\npaper shape: the image pyramid re-runs gradient+histogram per level\n"
      "so its cost grows with the scale count, while the feature pyramid\n"
      "pays extraction once — the gap widens with more scales.\n");

  // Extraction-only accounting (the stage the paper moves out of the loop).
  {
    util::Timer timer;
    const hog::CellGrid cells = hog::compute_cell_grid(scene.image, params);
    const double extract_ms = timer.milliseconds();
    timer.reset();
    const hog::CellGrid half =
        hog::downscale_cell_grid(cells, 2.0, hog::FeatureInterp::kBilinear);
    const double scale_ms = timer.milliseconds();
    std::printf(
        "\nstage split: cell-histogram extraction %.1f ms vs feature "
        "down-scale %.2f ms (%.0fx cheaper — why the paper moves scaling "
        "after extraction; %dx%d grid -> %dx%d)\n",
        extract_ms, scale_ms, extract_ms / scale_ms, cells.cells_x(),
        cells.cells_y(), half.cells_x(), half.cells_y());
  }

  // --- the third family: model pyramid (Benenson [1]) vs feature pyramid ---
  {
    std::printf("\n--- run-time detection cost: feature pyramid vs model pyramid ---\n");
    const dataset::WindowSet train = dataset::make_window_set(271, 150, 300);
    core::PedestrianDetector fp_detector;
    fp_detector.train(train);
    fp_detector.mutable_config().multiscale.scales = {1.0, 1.5, 2.0};

    core::ModelPyramidConfig mp_config;
    mp_config.scales = {1.0, 1.5, 2.0};
    core::ModelPyramidDetector mp_detector(mp_config);
    util::Timer train_timer;
    mp_detector.train(train);
    const double mp_train_s = train_timer.seconds();

    util::Timer t1;
    const auto fp_result = fp_detector.detect(scene.image);
    const double fp_ms = t1.milliseconds();
    util::Timer t2;
    const auto mp_result = mp_detector.detect(scene.image);
    const double mp_ms = t2.milliseconds();
    std::printf(
        "feature pyramid: %.1f ms/frame (%lld windows over %d levels)\n"
        "model pyramid  : %.1f ms/frame (%lld windows, 1 extraction, no "
        "pyramid; paid %.1f s extra training offline)\n"
        "(Benenson et al. [1] trade test-time resampling for train-time\n"
        " cost. In scalar software the big-window models' longer dot\n"
        " products dominate, so the feature pyramid wins here; on hardware\n"
        " with parallel MACs the model pyramid's zero-resampling shines —\n"
        " but it needs K weight memories, where the paper's feature scaling\n"
        " keeps the FPGA's single model memory.)\n",
        fp_ms, fp_result.windows_evaluated, fp_result.levels, mp_ms,
        mp_result.windows_evaluated, mp_train_s);

    // --- persistent engine: steady-state reuse and per-level threading ---
    // The streaming counterpart of the numbers above: one DetectionEngine
    // held across frames re-shapes warm buffers instead of reallocating
    // (frame 1 pays the workspace sizing), and levels can be scanned on
    // parallel lanes with bit-identical output.
    std::printf("\n--- persistent engine: steady-state reuse, --threads scaling ---\n");
    const auto& cfg = fp_detector.config();
    util::Table eng_table(
        {"threads", "cold ms", "steady ms/frame", "workspace KiB", "reuse hits"});
    for (const int threads : {1, 2, 4}) {
      detect::DetectionEngine engine(detect::EngineOptions{.threads = threads});
      util::Timer cold;
      (void)engine.process(scene.image, cfg.hog, fp_detector.model(),
                           cfg.multiscale);
      const double cold_ms = cold.milliseconds();
      constexpr int kSteadyFrames = 5;
      util::Timer steady;
      for (int i = 0; i < kSteadyFrames; ++i) {
        (void)engine.process(scene.image, cfg.hog, fp_detector.model(),
                             cfg.multiscale);
      }
      const double steady_ms = steady.milliseconds() / kSteadyFrames;
      eng_table.add_row(
          {util::format("%d", threads), util::to_fixed(cold_ms, 1),
           util::to_fixed(steady_ms, 1),
           util::to_fixed(static_cast<double>(engine.stats().alloc_bytes) / 1024.0, 0),
           util::format("%lld", engine.stats().reuse_hits)});
    }
    std::fputs(eng_table.to_string().c_str(), stdout);
    std::printf(
        "(steady < cold: warm-buffer reuse removes every per-frame\n"
        " allocation; extra lanes help when level costs are balanced —\n"
        " the base level dominates the feature pyramid, bounding the gain.)\n");
  }

  // --- ablation 1: block normalization scheme vs accuracy ---
  std::printf("\n--- ablation: block normalization scheme (base-scale accuracy) ---\n");
  util::Table norm_table({"norm", "accuracy %", "AUC"});
  for (const auto& [name, norm] :
       {std::pair{"L2-Hys", hog::BlockNorm::kL2Hys},
        {"L2", hog::BlockNorm::kL2},
        {"L1", hog::BlockNorm::kL1},
        {"L1-sqrt", hog::BlockNorm::kL1Sqrt}}) {
    core::ScaleExperimentConfig config;
    config.hog.norm = norm;
    config.train_pos = 200;
    config.train_neg = 400;
    config.test_pos = 150;
    config.test_neg = 300;
    config.scales = {};
    const auto result = core::run_scale_experiment(config);
    norm_table.add_row({name, util::to_fixed(result.base.accuracy * 100, 2),
                        util::to_fixed(result.base.roc.auc, 4)});
  }
  std::fputs(norm_table.to_string().c_str(), stdout);

  // --- ablation 1b: gradient operator (Dalal & Triggs' comparison) ---
  std::printf("\n--- ablation: gradient operator (base-scale accuracy) ---\n");
  util::Table grad_table({"operator", "accuracy %", "AUC"});
  for (const auto& [name, op] :
       {std::pair{"centered [-1 0 1]", imgproc::GradientOp::kCentered},
        {"Sobel 3x3", imgproc::GradientOp::kSobel},
        {"Prewitt 3x3", imgproc::GradientOp::kPrewitt},
        {"one-sided [-1 1]", imgproc::GradientOp::kOneSided}}) {
    core::ScaleExperimentConfig config;
    config.hog.gradient_op = op;
    config.train_pos = 200;
    config.train_neg = 400;
    config.test_pos = 150;
    config.test_neg = 300;
    config.scales = {};
    const auto result = core::run_scale_experiment(config);
    grad_table.add_row({name, util::to_fixed(result.base.accuracy * 100, 2),
                        util::to_fixed(result.base.roc.auc, 4)});
  }
  std::fputs(grad_table.to_string().c_str(), stdout);

  // --- ablation 1c: Gaussian pre-smoothing (Dalal's sigma study) ---
  std::printf("\n--- ablation: pre-smoothing sigma (base-scale accuracy) ---\n");
  util::Table smooth_table({"sigma", "accuracy %", "AUC"});
  for (const double sigma : {0.0, 0.5, 1.0, 2.0}) {
    core::ScaleExperimentConfig config;
    config.hog.presmooth_sigma = static_cast<float>(sigma);
    config.train_pos = 200;
    config.train_neg = 400;
    config.test_pos = 150;
    config.test_neg = 300;
    config.scales = {};
    const auto result = core::run_scale_experiment(config);
    smooth_table.add_row({util::to_fixed(sigma, 1),
                          util::to_fixed(result.base.accuracy * 100, 2),
                          util::to_fixed(result.base.roc.auc, 4)});
  }
  std::fputs(smooth_table.to_string().c_str(), stdout);
  std::printf(
      "(On INRIA, Dalal & Triggs found sigma = 0 best: real pedestrians\n"
      " carry fine texture that smoothing destroys. On these synthetic\n"
      " windows the fine scale is mostly sensor noise, so mild smoothing\n"
      " helps instead — a known artifact of the dataset substitution to\n"
      " keep in mind when reading absolute accuracies.)\n");

  // --- robustness: fog/haze density vs recall ---
  std::printf("\n--- robustness: fog density vs positive recall ---\n");
  {
    core::PedestrianDetector fog_detector;
    fog_detector.train(dataset::make_window_set(606, 250, 500));
    // Pure photometric fog is an affine transform that L2-Hys normalization
    // cancels *exactly* (we verify: density 0.8 alone costs nothing) — the
    // real-world damage comes from sensor noise that does not scale with
    // the crushed contrast, so the sweep adds a fixed post-fog noise floor.
    util::Table fog_table(
        {"fog density", "recall % (fog only)", "recall % (fog + sensor noise)"});
    for (const double density : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
      const dataset::WindowSet test = dataset::make_window_set(607, 120, 0);
      int clean = 0;
      int noisy = 0;
      util::Rng noise_rng(608);
      for (const auto& w : test.windows) {
        imgproc::ImageF fogged = w;
        dataset::apply_fog(fogged, density);
        if (fog_detector.score_window(fogged) > 0) ++clean;
        dataset::add_noise(fogged, noise_rng, 0.03);
        if (fog_detector.score_window(fogged) > 0) ++noisy;
      }
      fog_table.add_row({util::to_fixed(density, 1),
                         util::to_fixed(100.0 * clean / 120.0, 1),
                         util::to_fixed(100.0 * noisy / 120.0, 1)});
    }
    std::fputs(fog_table.to_string().c_str(), stdout);
    std::printf(
        "(fog-only recall is flat: block normalization cancels the affine\n"
        " contrast loss exactly. With a fixed sensor-noise floor the\n"
        " fog-crushed gradients sink below the noise and recall falls —\n"
        " the failure mode a DAS actually faces at night/in haze.)\n");
  }

  // --- ablation 2: feature down-sampling interpolation at scale 1.4 ---
  std::printf("\n--- ablation: feature-scaling interpolation (scale 1.4) ---\n");
  util::Table interp_table({"interp", "accuracy %", "AUC"});
  for (const auto& [name, interp] :
       {std::pair{"bilinear", hog::FeatureInterp::kBilinear},
        {"nearest", hog::FeatureInterp::kNearest},
        {"area", hog::FeatureInterp::kArea}}) {
    core::ScaleExperimentConfig config;
    config.feature_method_interp = interp;
    config.train_pos = 200;
    config.train_neg = 400;
    config.test_pos = 150;
    config.test_neg = 300;
    config.scales = {1.4};
    const auto result = core::run_scale_experiment(config);
    interp_table.add_row(
        {name, util::to_fixed(result.rows[0].feature.accuracy * 100, 2),
         util::to_fixed(result.rows[0].feature.roc.auc, 4)});
  }
  std::fputs(interp_table.to_string().c_str(), stdout);

  // Per-stage metrics JSON alongside the tables, with the accelerator's cycle
  // accounting for this frame size at the paper's hardware scale set.
  const hwsim::TimingModel timing(hwsim::timing_config_for_frame(width, height));
  hwsim::publish_timing_metrics(timing, scale_sets.front());
  if (!obs::report_from_cli(cli)) return 1;
  if (cli.get_string("metrics-out").empty()) {
    const char* path = "bench_pipeline_speedup_metrics.json";
    if (!obs::write_file(path, obs::Registry::instance().to_json())) return 1;
    std::printf("metrics JSON written to %s\n", path);
  }
  return 0;
}
