// Experiment E4 — the paper's throughput/latency claims (Section 5).
//
//  * classifier completes an HDTV frame in 1,200,420 cycles (< 10 ms @125MHz)
//  * 36-cycle steady-state window cadence after a 288-cycle buffer fill
//  * two-scale detection of a 1080x1920 frame within 16.6 ms => 60 fps
//
// The closed-form timing model produces the paper's exact numbers; the
// cycle-level pipeline simulation (every RTL block as a clocked module) is
// then run end to end — including on the full HDTV frame size — and must
// agree with the model.
#include <cstdio>

#include "src/hwsim/pipeline.hpp"
#include "src/hwsim/timing.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace pdet;
  using namespace pdet::hwsim;

  std::printf("E4: accelerator throughput and latency\n\n");

  const TimingModel hdtv;  // 1920x1080 @ 125 MHz
  std::printf("--- closed-form model (paper Section 5 arithmetic) ---\n");
  std::printf("classifier cycles / frame : %llu   (paper: 1200420)\n",
              static_cast<unsigned long long>(hdtv.classifier_frame_cycles()));
  std::printf("classifier time           : %.3f ms (paper: < 10 ms)\n",
              hdtv.classifier_frame_ms());
  std::printf("extractor cycles / frame  : %llu   (1 px/cycle ingest)\n",
              static_cast<unsigned long long>(hdtv.extractor_frame_cycles()));
  std::printf("frame latency             : %.3f ms (paper: within 16.6 ms)\n",
              hdtv.frame_latency_ms());
  std::printf("sustained throughput      : %.2f fps (paper: 60 fps HDTV)\n",
              hdtv.max_fps());
  std::printf("scale-2 classifier cycles : %llu\n\n",
              static_cast<unsigned long long>(
                  hdtv.classifier_frame_cycles_at_scale(2.0)));

  std::printf("--- cycle-level simulation vs model ---\n");
  util::Table table({"frame", "sim cycles", "model estimate", "sim fps@125MHz",
                     "windows s1", "windows s2", "NHOG max occ", "sim wall s"});
  struct Case {
    int w;
    int h;
  };
  for (const Case c : {Case{256, 256}, Case{640, 480}, Case{1280, 720},
                       Case{1920, 1080}}) {
    PipelineConfig config;
    config.frame_width = c.w;
    config.frame_height = c.h;
    config.extra_scales = {2.0};
    util::Timer wall;
    AcceleratorPipeline pipeline(config);
    const PipelineStats stats = pipeline.run_frame();
    TimingConfig tc;
    tc.frame_width = c.w;
    tc.frame_height = c.h;
    const TimingModel model(tc);
    table.add_row(
        {util::format("%dx%d", c.w, c.h),
         util::format("%llu", static_cast<unsigned long long>(stats.total_cycles)),
         util::format("%llu",
                      static_cast<unsigned long long>(model.frame_latency_cycles())),
         util::to_fixed(stats.fps, 2),
         util::format("%llu", static_cast<unsigned long long>(stats.windows_s0)),
         util::format("%llu", stats.windows_extra.empty()
                                  ? 0ULL
                                  : static_cast<unsigned long long>(
                                        stats.windows_extra[0])),
         util::format("%d/%d", stats.nhog_max_occupancy, stats.nhog_capacity),
         util::to_fixed(wall.seconds(), 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "(sim counts single-frame latency incl. line-buffer priming, ~0.5%%\n"
      " above the closed-form estimate; sustained fps with frames streamed\n"
      " back-to-back is the bottleneck-stage rate reported above the table)\n");

  std::printf("\n--- sustained throughput: 3 HDTV frames back to back ---\n");
  {
    PipelineConfig config;
    config.extra_scales = {2.0};
    config.frames = 3;
    AcceleratorPipeline pipeline(config);
    const PipelineStats stats = pipeline.run_frame();
    const double period = static_cast<double>(stats.sustained_period_cycles);
    std::printf("inter-frame period : %llu cycles (extractor bound: %llu)\n",
                static_cast<unsigned long long>(stats.sustained_period_cycles),
                static_cast<unsigned long long>(hdtv.extractor_frame_cycles()));
    std::printf("sustained rate     : %.2f fps (simulated, 2 scales)\n",
                config.clock_hz / period);
    std::printf("NHOG max occupancy : %d/%d rows across frame boundaries\n",
                stats.nhog_max_occupancy, stats.nhog_capacity);
  }

  std::printf("\n--- standalone classifier cadence check ---\n");
  std::printf("sweep(240 cols) = %llu cycles = 288 fill + 239 x 36\n",
              static_cast<unsigned long long>(TimingModel::sweep_cycles(240)));
  std::printf("135 rows x sweep = %llu cycles (paper: 1200420)\n",
              static_cast<unsigned long long>(
                  AcceleratorPipeline::classifier_standalone_cycles(135, 240)));

  const bool sixty = hdtv.meets_fps(60.0);
  std::printf("\n60 fps HDTV claim: %s (%.2f fps, 2 scales concurrently)\n",
              sixty ? "REPRODUCED" : "NOT MET", hdtv.max_fps());
  return sixty ? 0 : 1;
}
