// Remote-serving throughput: loopback TCP clients vs the in-process runtime.
//
// PR 3 measured the serving runtime in-process; this bench asks what the
// wire costs. For each client count N it runs the same paced camera load
// twice — N streams submitted straight into a runtime::DetectionServer, and
// N net::Client connections streaming the same frames through a
// net::DetectionService over loopback TCP — and compares aggregate fps,
// client-observed round-trip latency percentiles and the shed rate. The
// deployment claim being tested: the wire layer (encode + CRC + loopback +
// decode) is cheap against a multi-scale detection, so a detector node
// serves remote cameras at nearly in-process throughput. A final
// deliberately-overloaded configuration drives the slow-path machinery
// (bounded frame queue + drop-oldest) through the network front end to show
// load shedding, not backlog, absorbs excess offered load.
//
// Acceptance (checked, reflected in the exit code): >= 4 concurrent loopback
// clients complete with zero protocol errors and in-order per-stream
// delivery, at >= 80% of the in-process aggregate fps at the same stream
// count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/multistream.hpp"
#include "src/net/client.hpp"
#include "src/net/service.hpp"
#include "src/obs/report.hpp"
#include "src/runtime/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace {

using namespace pdet;
using Clock = std::chrono::steady_clock;

/// Pre-rendered frames, one small rotation per stream (a camera loop).
using Feed = std::vector<std::vector<imgproc::ImageF>>;

struct RunResult {
  double fps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;
  long long completed = 0;
  bool in_order = true;
  long long protocol_errors = 0;
};

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  return xs[static_cast<std::size_t>(idx + 0.5)];
}

/// N paced streams straight into the runtime (the PR 3 baseline).
RunResult run_inprocess(const svm::LinearModel& model,
                        const runtime::ServerOptions& base, const Feed& feed,
                        int streams, int frames, double interval_ms) {
  runtime::ServerOptions opts = base;
  opts.workers = streams;
  runtime::DetectionServer server(model, opts);
  // Client-equivalent latency: submit -> in-order delivery, per frame.
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(streams));
  std::vector<std::vector<Clock::time_point>> submit_at(
      static_cast<std::size_t>(streams));
  for (int s = 0; s < streams; ++s) {
    submit_at[static_cast<std::size_t>(s)].reserve(
        static_cast<std::size_t>(frames));
    auto& lane = lat[static_cast<std::size_t>(s)];
    auto& stamps = submit_at[static_cast<std::size_t>(s)];
    server.add_stream("cam" + std::to_string(s),
                      [&lane, &stamps](const runtime::StreamResult& r) {
                        const auto now = Clock::now();
                        const auto at = stamps[static_cast<std::size_t>(
                            r.sequence)];
                        lane.push_back(
                            std::chrono::duration<double, std::milli>(now - at)
                                .count());
                      });
  }
  server.start();
  const auto t0 = Clock::now();
  std::vector<std::thread> producers;
  for (int s = 0; s < streams; ++s) {
    producers.emplace_back([&, s] {
      const auto& pool = feed[static_cast<std::size_t>(s)];
      auto& stamps = submit_at[static_cast<std::size_t>(s)];
      const auto interval =
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(interval_ms));
      auto next = Clock::now();
      for (int f = 0; f < frames; ++f) {
        stamps.push_back(Clock::now());
        (void)server.submit(s, pool[static_cast<std::size_t>(f) % pool.size()]);
        if (interval_ms > 0.0) {
          next += interval;
          std::this_thread::sleep_until(next);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  server.drain();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  server.stop();
  const runtime::RuntimeStats stats = server.stats();

  RunResult out;
  std::vector<double> all;
  for (auto& lane : lat) all.insert(all.end(), lane.begin(), lane.end());
  out.completed = stats.completed;
  out.fps = wall_s > 0.0 ? static_cast<double>(stats.completed) / wall_s : 0.0;
  out.p50_ms = percentile(all, 0.50);
  out.p99_ms = percentile(all, 0.99);
  out.shed_rate =
      stats.submitted > 0
          ? static_cast<double>(stats.dropped_queue + stats.dropped_deadline) /
                static_cast<double>(stats.submitted)
          : 0.0;
  return out;
}

/// The same load through loopback TCP: one net::Client thread per camera.
/// With `poll_telemetry`, one extra connection scrapes the telemetry plane
/// throughout the run (the "is a live Prometheus scrape free?" experiment);
/// `*prometheus_valid` reports whether every scrape returned well-formed
/// exposition text.
RunResult run_net(const svm::LinearModel& model,
                  const runtime::ServerOptions& base, const Feed& feed,
                  int clients, int frames, double interval_ms,
                  bool poll_telemetry = false,
                  bool* prometheus_valid = nullptr) {
  net::ServiceOptions sopts;
  sopts.runtime = base;
  sopts.runtime.workers = clients;
  sopts.max_clients = clients + (poll_telemetry ? 1 : 0);
  net::DetectionService service(model, sopts);
  std::string error;
  if (!service.start(&error)) {
    std::fprintf(stderr, "service start failed: %s\n", error.c_str());
    return {};
  }

  RunResult out;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::atomic<long long> completed{0};
  std::atomic<long long> protocol_errors{0};
  std::atomic<bool> in_order{true};
  std::atomic<bool> cams_done{false};
  std::thread watcher;
  if (poll_telemetry) {
    if (prometheus_valid != nullptr) *prometheus_valid = false;
    watcher = std::thread([&] {
      net::ClientOptions copts;
      copts.port = service.port();
      copts.name = "bench-telemetry";
      net::Client scraper(copts);
      if (!scraper.connect()) return;
      bool all_valid = true;
      long long scrapes = 0;
      net::wire::TelemetryReport report;
      while (!cams_done.load(std::memory_order_acquire)) {
        if (!scraper.query_telemetry(report, 2000.0)) {
          all_valid = false;
          break;
        }
        ++scrapes;
        // Valid exposition text: typed pdet_ series with samples. The
        // health gauge is published unconditionally, so it must be there
        // from the very first scrape.
        if (report.prometheus.find("# TYPE pdet_") == std::string::npos ||
            report.prometheus.find("pdet_runtime_health") ==
                std::string::npos ||
            report.prometheus.back() != '\n') {
          all_valid = false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (prometheus_valid != nullptr) {
        *prometheus_valid = all_valid && scrapes > 0;
      }
      scraper.disconnect();
    });
  }
  const auto t0 = Clock::now();
  std::vector<std::thread> cams;
  for (int c = 0; c < clients; ++c) {
    cams.emplace_back([&, c] {
      net::ClientOptions copts;
      copts.port = service.port();
      copts.name = "bench-cam" + std::to_string(c);
      net::Client client(copts);
      if (!client.connect()) {
        protocol_errors.fetch_add(1);
        return;
      }
      const auto& pool = feed[static_cast<std::size_t>(c)];
      auto& lane = lat[static_cast<std::size_t>(c)];
      std::vector<Clock::time_point> stamps;
      stamps.reserve(static_cast<std::size_t>(frames));
      net::wire::Result result;
      long long got = 0;
      const auto interval =
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(interval_ms));
      auto next = Clock::now();
      for (int f = 0; f < frames; ++f) {
        stamps.push_back(Clock::now());
        if (!client.submit(pool[static_cast<std::size_t>(f) % pool.size()])) {
          protocol_errors.fetch_add(1);
          return;
        }
        // Read what has arrived; stay roughly a frame behind the feed.
        while (client.next_result(result, 0.0)) {
          lane.push_back(std::chrono::duration<double, std::milli>(
                             Clock::now() -
                             stamps[static_cast<std::size_t>(result.tag)])
                             .count());
          ++got;
        }
        if (interval_ms > 0.0) {
          next += interval;
          std::this_thread::sleep_until(next);
        }
      }
      while (got < client.submitted_on_connection() &&
             client.next_result(result, 30000.0)) {
        lane.push_back(std::chrono::duration<double, std::milli>(
                           Clock::now() -
                           stamps[static_cast<std::size_t>(result.tag)])
                           .count());
        ++got;
      }
      completed.fetch_add(got);
      protocol_errors.fetch_add(client.protocol_errors());
      if (!client.in_order()) in_order.store(false);
      client.disconnect();
    });
  }
  for (std::thread& t : cams) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  cams_done.store(true, std::memory_order_release);
  if (watcher.joinable()) watcher.join();
  service.stop();
  const net::ServiceStats stats = service.stats();

  std::vector<double> all;
  for (auto& lane : lat) all.insert(all.end(), lane.begin(), lane.end());
  out.completed = completed.load();
  out.fps = wall_s > 0.0 ? static_cast<double>(out.completed) / wall_s : 0.0;
  out.p50_ms = percentile(all, 0.50);
  out.p99_ms = percentile(all, 0.99);
  const long long offered = stats.frames_received;
  out.shed_rate =
      offered > 0
          ? static_cast<double>(stats.runtime.dropped_queue +
                                stats.runtime.dropped_deadline +
                                stats.results_dropped) /
                static_cast<double>(offered)
          : 0.0;
  out.in_order = in_order.load();
  out.protocol_errors = protocol_errors.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_net_throughput",
                "loopback TCP serving vs in-process runtime");
  cli.add_int("frames", 12, "frames per client per configuration");
  cli.add_int("pool", 4, "distinct frames per stream (cycled)");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  obs::set_metrics_enabled(true);

  std::printf("training detector...\n");
  core::PedestrianDetector detector;
  detector.train(dataset::make_window_set(71, 250, 500));
  runtime::ServerOptions base;
  base.queue_capacity = 16;
  base.backpressure = runtime::BackpressurePolicy::kBlock;
  base.hog = detector.config().hog;
  base.multiscale = detector.config().multiscale;
  base.multiscale.scales = {1.0, 1.26, 1.59, 2.0};

  dataset::MultiStreamOptions mopts;
  mopts.scene.width = 256;
  mopts.scene.height = 192;
  mopts.scene.camera.focal_px = 520.0;
  const dataset::MultiStreamSource source(404, mopts);
  constexpr int kMaxClients = 4;
  const int pool_frames = cli.get_int("pool");
  Feed feed(static_cast<std::size_t>(kMaxClients));
  for (int s = 0; s < kMaxClients; ++s) {
    for (int f = 0; f < pool_frames; ++f) {
      feed[static_cast<std::size_t>(s)].push_back(source.frame(s, f).image);
    }
  }

  // Calibrate pacing exactly like bench_runtime_throughput: each camera
  // offers ~1/6 of one worker's capacity, so the lossless comparison
  // measures wire overhead, not saturation noise.
  const RunResult warm =
      run_inprocess(detector.model(), base, feed, 1, 4, 0.0);
  const double service_ms = warm.p50_ms > 0.0 ? warm.p50_ms : 1.0;
  const double interval_ms = 6.0 * service_ms;
  std::printf("calibration: round-trip p50 %.1f ms -> camera interval %.1f ms\n\n",
              service_ms, interval_ms);

  const int frames = cli.get_int("frames");
  util::Table table({"clients", "transport", "fps", "rt p50/p99 ms", "shed %",
                     "in order", "proto err"});
  bool accept = true;
  double fps_ratio_4 = 0.0;
  RunResult net4;
  for (const int n : {1, 2, 4}) {
    const RunResult inproc =
        run_inprocess(detector.model(), base, feed, n, frames, interval_ms);
    const RunResult net =
        run_net(detector.model(), base, feed, n, frames, interval_ms);
    table.add_row({std::to_string(n), "in-process",
                   util::to_fixed(inproc.fps, 1),
                   util::to_fixed(inproc.p50_ms, 1) + " / " +
                       util::to_fixed(inproc.p99_ms, 1),
                   util::to_fixed(100.0 * inproc.shed_rate, 1), "-", "-"});
    table.add_row({std::to_string(n), "loopback tcp",
                   util::to_fixed(net.fps, 1),
                   util::to_fixed(net.p50_ms, 1) + " / " +
                       util::to_fixed(net.p99_ms, 1),
                   util::to_fixed(100.0 * net.shed_rate, 1),
                   net.in_order ? "yes" : "NO",
                   std::to_string(net.protocol_errors)});
    const double ratio = inproc.fps > 0.0 ? net.fps / inproc.fps : 0.0;
    if (n == kMaxClients) {
      fps_ratio_4 = ratio;
      net4 = net;
    }
    accept = accept && net.in_order && net.protocol_errors == 0 &&
             net.completed == static_cast<long long>(n) * frames;
    const std::string prefix = "net.bench.clients_" + std::to_string(n);
    obs::gauge_set(prefix + ".fps", net.fps);
    obs::gauge_set(prefix + ".fps_ratio_vs_inprocess", ratio);
    obs::gauge_set(prefix + ".rt_ms_p50", net.p50_ms);
    obs::gauge_set(prefix + ".rt_ms_p99", net.p99_ms);
    obs::gauge_set(prefix + ".shed_rate", net.shed_rate);
  }
  std::fputs(table.to_string().c_str(), stdout);
  accept = accept && fps_ratio_4 >= 0.8;
  std::printf("\n%d loopback clients at %.0f%% of in-process fps "
              "(acceptance: >= 80%%, in order, zero protocol errors): %s\n",
              kMaxClients, 100.0 * fps_ratio_4, accept ? "PASS" : "FAIL");

  // --- telemetry plane overhead: is a live Prometheus scrape free? ------
  // Re-run the 4-client configuration with one extra connection scraping
  // TelemetryQuery every 50 ms; the paced load means any slowdown shows up
  // directly as lost fps against the telemetry-off run above.
  bool prometheus_ok = false;
  const RunResult tele = run_net(detector.model(), base, feed, kMaxClients,
                                 frames, interval_ms, /*poll_telemetry=*/true,
                                 &prometheus_ok);
  const double overhead =
      net4.fps > 0.0 ? 1.0 - tele.fps / net4.fps : 1.0;
  const bool telemetry_ok =
      prometheus_ok && tele.in_order && tele.protocol_errors == 0 &&
      overhead < 0.01;
  std::printf("\ntelemetry scrapes during load: fps %.1f vs %.1f off "
              "(overhead %.2f%%), prometheus text valid: %s\n",
              tele.fps, net4.fps, 100.0 * overhead,
              prometheus_ok ? "yes" : "NO");
  std::printf("  telemetry acceptance (<1%% overhead, valid text): %s\n",
              telemetry_ok ? "PASS" : "FAIL");
  obs::gauge_set("net.bench.telemetry.fps_overhead", overhead);
  obs::gauge_set("net.bench.telemetry.prometheus_valid",
                 prometheus_ok ? 1.0 : 0.0);
  accept = accept && telemetry_ok;

  // --- overload through the wire: shedding, not backlog -----------------
  const RunResult over = [&] {
    // 4 cameras flat-out against a 1-worker pool behind a tight drop-oldest
    // queue: excess offered load must shed, not back up.
    net::ServiceOptions so;
    so.runtime = base;
    so.runtime.queue_capacity = 4;
    so.runtime.backpressure = runtime::BackpressurePolicy::kDropOldest;
    so.runtime.workers = 1;
    so.max_clients = 4;
    net::DetectionService service(detector.model(), so);
    std::string err;
    RunResult r;
    if (!service.start(&err)) return r;
    std::atomic<long long> done{0};
    std::vector<std::thread> cams;
    for (int c = 0; c < 4; ++c) {
      cams.emplace_back([&, c] {
        net::ClientOptions copts;
        copts.port = service.port();
        net::Client client(copts);
        if (!client.connect()) return;
        net::wire::Result result;
        long long got = 0;
        for (int f = 0; f < cli.get_int("frames"); ++f) {
          if (!client.submit(
                  feed[static_cast<std::size_t>(c)]
                      [static_cast<std::size_t>(f) %
                       feed[static_cast<std::size_t>(c)].size()])) {
            return;
          }
          while (client.next_result(result, 0.0)) ++got;
        }
        while (got < client.submitted_on_connection() &&
               client.next_result(result, 30000.0)) {
          ++got;
        }
        done.fetch_add(got);
        client.disconnect();
      });
    }
    for (std::thread& t : cams) t.join();
    service.stop();
    const net::ServiceStats stats = service.stats();
    r.completed = done.load();
    r.shed_rate = stats.frames_received > 0
                      ? static_cast<double>(stats.runtime.dropped_queue +
                                            stats.runtime.dropped_deadline)
                            / static_cast<double>(stats.frames_received)
                      : 0.0;
    return r;
  }();
  std::printf("\noverload (4 clients flat-out -> 1 worker, queue 4, "
              "drop-oldest): %lld delivered, shed rate %.0f%%\n",
              over.completed, 100.0 * over.shed_rate);
  obs::gauge_set("net.bench.overload.shed_rate", over.shed_rate);
  // Every submitted frame still gets exactly one (possibly drop-status)
  // result — delivery count must match offered count even under shedding.
  const bool overload_ok = over.completed == 4LL * cli.get_int("frames");
  accept = accept && overload_ok;
  std::printf("  exactly-once delivery under overload: %s\n",
              overload_ok ? "yes" : "NO");

  if (!obs::report_from_cli(cli)) return 1;
  return accept ? 0 : 1;
}
