// Experiment E3 — reproduces paper Table 2.
//
// "Resource utilization of hardware accelerator" on the Zynq ZC7020:
// LUT 26051, FF 40190, LUTRAM 383, BRAM 98.5, DSP48 18, BUFG 1. The model's
// per-module breakdown is calibrated to sum to the paper's totals at the
// paper's configuration (HDTV, 18-row NHOGMem, 2 scales), and then swept
// across the design space the paper's Section 5 discusses: more scales
// ("could be easily extended to cover several scales" on a larger device)
// and the un-reduced 135-row NHOGMem of the authors' earlier design [10].
#include <cstdio>

#include "src/hwsim/resources.hpp"
#include "src/util/table.hpp"
#include "src/util/strings.hpp"

int main() {
  using namespace pdet;
  using namespace pdet::hwsim;

  std::printf("E3 / paper Table 2: FPGA resource utilization (modeled)\n\n");
  const ResourceModel model;  // paper configuration
  std::fputs(model.to_table().c_str(), stdout);

  std::printf("\n--- design-space sweep: number of detection scales ---\n");
  util::Table sweep({"scales", "LUT", "FF", "BRAM", "DSP48", "fits ZC7020"});
  for (int scales = 1; scales <= 6; ++scales) {
    AcceleratorResourceConfig config;
    config.num_scales = scales;
    const ResourceModel m(config);
    const ResourceVector t = m.total();
    sweep.add_row({util::format("%d", scales), util::to_fixed(t.lut, 0),
                   util::to_fixed(t.ff, 0), util::to_fixed(t.bram, 1),
                   util::to_fixed(t.dsp, 0), m.fits() ? "yes" : "NO"});
  }
  std::fputs(sweep.to_string().c_str(), stdout);

  std::printf("\n--- ablation: NHOGMem depth (paper reduced 135 -> 18 rows) ---\n");
  util::Table depth({"nhog rows", "BRAM", "fits ZC7020"});
  for (const int rows : {18, 32, 64, 135}) {
    AcceleratorResourceConfig config;
    config.nhogmem_rows = rows;
    const ResourceModel m(config);
    depth.add_row({util::format("%d", rows), util::to_fixed(m.total().bram, 1),
                   m.fits() ? "yes" : "NO"});
  }
  std::fputs(depth.to_string().c_str(), stdout);
  std::printf(
      "\nnote: the 135-row buffer of the authors' earlier design [10] does\n"
      "not fit the ZC7020 alongside two classifiers — the 18-row ring is\n"
      "what makes the two-scale HDTV design feasible (paper Section 5).\n");
  return 0;
}
