// Experiment E7 — google-benchmark micro kernels for every stage of the
// detection chain (software and fixed-point hardware arithmetic).
#include <benchmark/benchmark.h>

#include <cmath>

#include "src/detect/nms.hpp"
#include "src/detect/scanner.hpp"
#include "src/fixedpoint/cordic.hpp"
#include "src/hog/descriptor.hpp"
#include "src/hog/feature_scale.hpp"
#include "src/hwsim/fixed_pipeline.hpp"
#include "src/hwsim/pipeline.hpp"
#include "src/hwsim/score_backend.hpp"
#include "src/score/backend.hpp"
#include "src/imgproc/convert.hpp"
#include "src/imgproc/gradient.hpp"
#include "src/imgproc/resize.hpp"
#include "src/svm/linear_svm.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace pdet;

imgproc::ImageF random_image(int w, int h, std::uint64_t seed) {
  util::Rng rng(seed);
  imgproc::ImageF img(w, h);
  for (float& p : img.pixels()) p = static_cast<float>(rng.uniform());
  return img;
}

void BM_Gradient960x540(benchmark::State& state) {
  const imgproc::ImageF img = random_image(960, 540, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imgproc::compute_gradients(img));
  }
}
BENCHMARK(BM_Gradient960x540);

void BM_CellGridWindow(benchmark::State& state) {
  const imgproc::ImageF img = random_image(64, 128, 2);
  const hog::HogParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hog::compute_cell_grid(img, params));
  }
}
BENCHMARK(BM_CellGridWindow);

void BM_CellGridFrame960x540(benchmark::State& state) {
  const imgproc::ImageF img = random_image(960, 540, 3);
  const hog::HogParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hog::compute_cell_grid(img, params));
  }
}
BENCHMARK(BM_CellGridFrame960x540);

// --- tile-size sweep: gradient + histogram kernels at candidate tile dims ---
// The UHD pipeline (pdet::tile) picks a core tile size; these rows show what
// the two dominant per-pixel kernels cost per candidate: VGA-class 640x480,
// the default 960x544 tile (plus halo it crops ~1200x800, dominated by the
// same per-pixel cost), and 720p-class 1280x720. Pixels/sec should be flat —
// all three fit streaming access patterns — so the tile size choice is about
// halo overhead, not kernel efficiency (see DESIGN.md tiling section).
void BM_GradientTileSweep(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const int h = static_cast<int>(state.range(1));
  const imgproc::ImageF img = random_image(w, h, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imgproc::compute_gradients(img));
  }
  state.SetItemsProcessed(state.iterations() * w * h);
}
BENCHMARK(BM_GradientTileSweep)
    ->Args({640, 480})
    ->Args({960, 544})
    ->Args({1280, 720});

void BM_CellGridTileSweep(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const int h = static_cast<int>(state.range(1));
  const imgproc::ImageF img = random_image(w, h, 22);
  const hog::HogParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hog::compute_cell_grid(img, params));
  }
  state.SetItemsProcessed(state.iterations() * w * h);
}
BENCHMARK(BM_CellGridTileSweep)
    ->Args({640, 480})
    ->Args({960, 544})
    ->Args({1280, 720});

void BM_NormalizeCellsFrame(benchmark::State& state) {
  const hog::HogParams params;
  const hog::CellGrid cells =
      hog::compute_cell_grid(random_image(960, 540, 4), params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hog::normalize_cells(cells, params));
  }
}
BENCHMARK(BM_NormalizeCellsFrame);

void BM_FeatureDownscaleFrame(benchmark::State& state) {
  const hog::HogParams params;
  const hog::CellGrid cells =
      hog::compute_cell_grid(random_image(960, 540, 5), params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hog::downscale_cell_grid(cells, 2.0, hog::FeatureInterp::kBilinear));
  }
}
BENCHMARK(BM_FeatureDownscaleFrame);

void BM_ImageResizeHalfFrame(benchmark::State& state) {
  const imgproc::ImageF img = random_image(960, 540, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        imgproc::resize_scale(img, 0.5, imgproc::Interp::kBilinear));
  }
}
BENCHMARK(BM_ImageResizeHalfFrame);

void BM_ImageResizeBicubicHalfFrame(benchmark::State& state) {
  const imgproc::ImageF img = random_image(960, 540, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        imgproc::resize_scale(img, 0.5, imgproc::Interp::kBicubic));
  }
}
BENCHMARK(BM_ImageResizeBicubicHalfFrame);

void BM_SvmDecision4608(benchmark::State& state) {
  util::Rng rng(7);
  svm::LinearModel model;
  model.weights.resize(4608);
  for (auto& w : model.weights) w = static_cast<float>(rng.normal(0, 0.02));
  std::vector<float> x(4608);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.decision(x));
  }
}
BENCHMARK(BM_SvmDecision4608);

// --- scoring backends: scores/sec vs batch size ---
// One ScoreBatch of `batch` windows (descriptor-sized random rows) pushed
// through each backend. Scalar is the per-row reference loop; batch is the
// blocked/unrolled kernel whose advantage should grow with batch size (one
// weight-vector pass serves two windows); hwsim runs the quantized MACBAR
// model with latency simulation off so the measurement is host arithmetic,
// not modeled device time.
svm::LinearModel scoring_model(std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  svm::LinearModel model;
  model.weights.resize(dim);
  for (auto& w : model.weights) w = static_cast<float>(rng.normal(0, 0.02));
  model.bias = 0.1f;
  return model;
}

void fill_batch(score::ScoreBatch& batch, std::size_t dim, std::size_t count,
                std::uint64_t seed) {
  util::Rng rng(seed);
  batch.configure(dim, count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::span<float> dst = batch.push(i);
    for (std::size_t d = 0; d < dim; ++d) {
      dst[d] = static_cast<float>(rng.uniform());
    }
  }
}

void score_backend_bench(benchmark::State& state,
                         score::ScoringBackend& backend) {
  const auto kDim =
      static_cast<std::size_t>(hog::HogParams().descriptor_size());
  const svm::LinearModel model = scoring_model(kDim, 13);
  const auto count = static_cast<std::size_t>(state.range(0));
  score::ScoreBatch batch;
  fill_batch(batch, kDim, count, 14);
  for (auto _ : state) {
    backend.score(model, batch);
    benchmark::DoNotOptimize(batch.score(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

void BM_ScoreScalar(benchmark::State& state) {
  score::ScalarBackend backend;
  score_backend_bench(state, backend);
}
BENCHMARK(BM_ScoreScalar)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_ScoreBatch(benchmark::State& state) {
  score::BatchBackend backend;
  score_backend_bench(state, backend);
}
BENCHMARK(BM_ScoreBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_ScoreHwsim(benchmark::State& state) {
  hwsim::HwsimBackendOptions opts;
  opts.simulate_latency = false;
  hwsim::HwsimScoreBackend backend(opts);
  score_backend_bench(state, backend);
}
BENCHMARK(BM_ScoreHwsim)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_ScanLevel960x540(benchmark::State& state) {
  const hog::HogParams params;
  util::Rng rng(8);
  svm::LinearModel model;
  model.weights.resize(static_cast<std::size_t>(params.descriptor_size()));
  for (auto& w : model.weights) w = static_cast<float>(rng.normal(0, 0.02));
  const hog::CellGrid cells =
      hog::compute_cell_grid(random_image(960, 540, 9), params);
  const hog::BlockGrid blocks = hog::normalize_cells(cells, params);
  detect::ScanOptions scan;
  scan.threshold = 1e9f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect::scan_level(blocks, params, model, scan));
  }
}
BENCHMARK(BM_ScanLevel960x540);

void BM_CordicVectoring(benchmark::State& state) {
  const fixedpoint::Cordic cordic(static_cast<int>(state.range(0)));
  double fx = 113.0;
  double fy = -77.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cordic.vectoring(fx, fy));
  }
}
BENCHMARK(BM_CordicVectoring)->Arg(8)->Arg(12)->Arg(16);

void BM_LibmAtan2Hypot(benchmark::State& state) {
  double fx = 113.0;
  double fy = -77.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::atan2(fy, fx) + std::hypot(fx, fy));
  }
}
BENCHMARK(BM_LibmAtan2Hypot);

void BM_FixedPipelineWindow(benchmark::State& state) {
  const hog::HogParams params;
  const hwsim::FixedHogPipeline pipe(params);
  const imgproc::ImageU8 img = imgproc::to_u8(random_image(64, 128, 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.normalize(pipe.compute_cells(img)));
  }
}
BENCHMARK(BM_FixedPipelineWindow);

void BM_CyclePipeline256(benchmark::State& state) {
  hwsim::PipelineConfig config;
  config.frame_width = 256;
  config.frame_height = 256;
  config.extra_scales = {2.0};
  for (auto _ : state) {
    hwsim::AcceleratorPipeline pipeline(config);
    benchmark::DoNotOptimize(pipeline.run_frame());
  }
}
BENCHMARK(BM_CyclePipeline256);

void BM_Nms(benchmark::State& state) {
  util::Rng rng(11);
  std::vector<detect::Detection> dets;
  for (int i = 0; i < 500; ++i) {
    detect::Detection d;
    d.x = rng.uniform_int(0, 800);
    d.y = rng.uniform_int(0, 400);
    d.width = 64;
    d.height = 128;
    d.score = static_cast<float>(rng.uniform(-1, 1));
    dets.push_back(d);
  }
  for (auto _ : state) {
    auto copy = dets;
    benchmark::DoNotOptimize(detect::nms(std::move(copy), 0.45));
  }
}
BENCHMARK(BM_Nms);

}  // namespace
