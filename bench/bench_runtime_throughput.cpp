// Serving-runtime throughput: aggregate fps / latency / drops vs streams.
//
// The paper's system argument is a *serving* argument — the accelerator is
// worth building because it sustains camera rate with a bounded worst case.
// This bench asks the same question of the host runtime: N paced camera
// streams (fixed per-stream frame interval, the offered load of a real DAS
// camera rig) are pushed through a DetectionServer, and we measure aggregate
// throughput, queue-wait/total-latency percentiles and the drop rate as the
// stream count grows. One stream leaves the engine pool mostly idle; more
// streams fill it — so aggregate fps must scale with stream count until the
// pool saturates (worker parallelism extends the saturation point on
// multicore hosts; on a single core the pacing idle time alone provides the
// headroom). A final deliberately-overloaded configuration shows the
// load-shedding path: bounded queue, degradation ladder and drop accounting
// instead of unbounded backlog.
//
// Also verifies the runtime's allocation discipline end to end with a global
// operator-new counter: after a warmup pass, submit -> queue -> engine ->
// in-order delivery must run allocation-free (the engine's zero-allocation
// steady state, preserved by the layers the runtime adds on top).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/multistream.hpp"
#include "src/fault/injector.hpp"
#include "src/obs/report.hpp"
#include "src/runtime/server.hpp"
#include "src/score/backend.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

// Ground-truth heap accounting (same pattern as bench_frame_detection): the
// steady-state section measures what the runtime actually allocates.
namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pdet;

struct RunConfig {
  int streams = 1;
  int workers = 1;
  int frames_per_stream = 8;
  double interval_ms = 0.0;  ///< per-stream pacing; 0 = submit flat out
  std::size_t queue_capacity = 16;
  runtime::BackpressurePolicy policy = runtime::BackpressurePolicy::kBlock;
  double deadline_ms = 0.0;
  int max_level = 3;  ///< scheduler ladder ceiling (0 = never degrade/skip)
  score::BackendKind backend = score::BackendKind::kScalar;
};

/// Pre-rendered frames, one small rotation per stream (a camera loop).
using Feed = std::vector<std::vector<imgproc::ImageF>>;

runtime::RuntimeStats run_server(const svm::LinearModel& model,
                                 const hog::HogParams& hog,
                                 const detect::MultiscaleOptions& multiscale,
                                 const Feed& feed, const RunConfig& cfg) {
  runtime::ServerOptions opts;
  opts.workers = cfg.workers;
  opts.queue_capacity = cfg.queue_capacity;
  opts.backpressure = cfg.policy;
  opts.scheduler.deadline_ms = cfg.deadline_ms;
  opts.scheduler.max_level = cfg.max_level;
  opts.backend = cfg.backend;
  opts.hog = hog;
  opts.multiscale = multiscale;
  runtime::DetectionServer server(model, opts);
  for (int s = 0; s < cfg.streams; ++s) {
    server.add_stream("cam" + std::to_string(s), nullptr);
  }
  server.start();
  std::vector<std::thread> producers;
  for (int s = 0; s < cfg.streams; ++s) {
    producers.emplace_back([&, s] {
      const auto& pool = feed[static_cast<std::size_t>(s)];
      const auto interval =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(cfg.interval_ms));
      auto next = std::chrono::steady_clock::now();
      for (int f = 0; f < cfg.frames_per_stream; ++f) {
        (void)server.submit(s, pool[static_cast<std::size_t>(f) % pool.size()]);
        if (cfg.interval_ms > 0.0) {
          next += interval;
          std::this_thread::sleep_until(next);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  server.drain();
  server.stop();
  return server.stats();
}

double drop_rate(const runtime::RuntimeStats& s) {
  return s.submitted > 0
             ? static_cast<double>(s.dropped_queue + s.dropped_deadline) /
                   static_cast<double>(s.submitted)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_runtime_throughput",
                "aggregate fps / latency / drops vs stream count");
  cli.add_int("frames", 10, "frames per stream per configuration");
  cli.add_int("pool", 4, "distinct frames per stream (cycled)");
  cli.add_string("backend", "scalar",
                 "scoring backend for the main sections: scalar | batch | "
                 "hwsim (the batch-fill table always compares scalar vs batch)");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  score::BackendKind backend = score::BackendKind::kScalar;
  if (!score::parse_backend(cli.get_string("backend"), backend)) {
    std::fprintf(stderr, "unknown --backend %s (want scalar|batch|hwsim)\n",
                 cli.get_string("backend").c_str());
    return 1;
  }
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  obs::set_metrics_enabled(true);
  util::Timer timer;

  std::printf("training detector...\n");
  core::PedestrianDetector detector;
  detector.train(dataset::make_window_set(71, 250, 500));
  const hog::HogParams hog = detector.config().hog;
  detect::MultiscaleOptions multiscale = detector.config().multiscale;
  multiscale.scales = {1.0, 1.26, 1.59, 2.0};

  dataset::MultiStreamOptions mopts;
  mopts.scene.width = 256;
  mopts.scene.height = 192;
  mopts.scene.camera.focal_px = 520.0;
  const dataset::MultiStreamSource source(404, mopts);
  constexpr int kMaxStreams = 8;
  const int pool_frames = cli.get_int("pool");
  Feed feed(static_cast<std::size_t>(kMaxStreams));
  for (int s = 0; s < kMaxStreams; ++s) {
    for (int f = 0; f < pool_frames; ++f) {
      feed[static_cast<std::size_t>(s)].push_back(source.frame(s, f).image);
    }
  }

  // Calibrate per-frame service time on this host, then pace each camera at
  // 6x that: one stream uses ~1/6 of one worker's capacity, four streams
  // ~2/3 — loaded enough to measure, lossless by construction.
  RunConfig calib;
  calib.frames_per_stream = 4;
  calib.backend = backend;
  const runtime::RuntimeStats warm =
      run_server(detector.model(), hog, multiscale, feed, calib);
  const double service_ms = warm.service_ms.p50 > 0.0 ? warm.service_ms.p50 : 1.0;
  const double interval_ms = 6.0 * service_ms;
  std::printf("calibration: service p50 %.1f ms -> camera interval %.1f ms "
              "(%u hardware thread%s)\n\n",
              service_ms, interval_ms, std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() == 1 ? "" : "s");

  // --- aggregate throughput vs stream count (lossless: kBlock, no deadline) --
  const int frames = cli.get_int("frames");
  util::Table table({"streams", "workers", "aggregate fps", "wait p50/p99 ms",
                     "total p50/p99 ms", "drop %"});
  double fps_1x1 = 0.0;
  double fps_4x4 = 0.0;
  bool lossless_clean = true;
  for (const int n : {1, 2, 4}) {
    RunConfig cfg;
    cfg.streams = n;
    cfg.workers = n;
    cfg.frames_per_stream = frames;
    cfg.interval_ms = interval_ms;
    cfg.backend = backend;
    const runtime::RuntimeStats s =
        run_server(detector.model(), hog, multiscale, feed, cfg);
    if (n == 1) fps_1x1 = s.aggregate_fps;
    if (n == 4) fps_4x4 = s.aggregate_fps;
    lossless_clean = lossless_clean && drop_rate(s) == 0.0 &&
                     s.completed == s.submitted && s.degraded == 0;
    table.add_row(
        {std::to_string(n), std::to_string(n),
         util::to_fixed(s.aggregate_fps, 1),
         util::to_fixed(s.queue_wait_ms.p50, 1) + " / " +
             util::to_fixed(s.queue_wait_ms.p99, 1),
         util::to_fixed(s.total_latency_ms.p50, 1) + " / " +
             util::to_fixed(s.total_latency_ms.p99, 1),
         util::to_fixed(100.0 * drop_rate(s), 1)});
    const std::string prefix = "runtime.bench.streams_" + std::to_string(n);
    obs::gauge_set(prefix + ".aggregate_fps", s.aggregate_fps);
    obs::gauge_set(prefix + ".total_ms_p50", s.total_latency_ms.p50);
    obs::gauge_set(prefix + ".total_ms_p99", s.total_latency_ms.p99);
    obs::gauge_set(prefix + ".drop_rate", drop_rate(s));
  }
  std::fputs(table.to_string().c_str(), stdout);
  const double scaling = fps_1x1 > 0.0 ? fps_4x4 / fps_1x1 : 0.0;
  obs::gauge_set("runtime.bench.scaling_4v1", scaling);
  std::printf("\naggregate scaling 4 streams/4 workers vs 1/1: %.2fx "
              "(expected >= 1.5x; drops in lossless mode: %s)\n",
              scaling, lossless_clean ? "none" : "UNEXPECTED");


  // --- cross-stream window batching: scalar vs batch, flat out ---
  // The refactor's payoff table. Every stream submits flat out (interval 0,
  // kBlock, no deadline) so the engines are saturated and the shared
  // ScoreHub sees concurrent scoring requests; "fill" is the mean windows
  // per backend batch reported by the server. The gate below requires the
  // batch backend to buy >= 1.2x aggregate fps at 4 streams.
  std::printf("\n--- cross-stream window batching (flat out, block) ---\n");
  // A dense 12% scale ladder: the feature pyramid makes the extra levels
  // cheap to *build* (cell-grid downscale, no re-extraction) but every level
  // still pays full window-scanning cost — exactly the regime the paper's
  // accelerator targets, and the one where the scoring backend is the
  // bottleneck the batch kernel attacks.
  detect::MultiscaleOptions fill_ms = multiscale;
  fill_ms.scales = {1.0, 1.12, 1.26, 1.41, 1.59, 1.78, 2.0};
  util::Table fill_table({"streams", "backend", "aggregate fps",
                          "total p99 ms", "batches", "mean fill"});
  bool batch_exactly_once = true;
  for (const int n : {1, 2, 4, 8}) {
    for (const score::BackendKind kind :
         {score::BackendKind::kScalar, score::BackendKind::kBatch}) {
      RunConfig cfg;
      cfg.streams = n;
      cfg.workers = n;
      cfg.frames_per_stream = 3 * frames;
      cfg.interval_ms = 0.0;
      cfg.max_level = 0;  // lossless: every frame full-pyramid, none skipped
      cfg.backend = kind;
      // Best of two runs per cell: flat-out scheduling on a loaded host is
      // noisy, and the cells are compared against each other.
      runtime::RuntimeStats s =
          run_server(detector.model(), hog, fill_ms, feed, cfg);
      const runtime::RuntimeStats s2 =
          run_server(detector.model(), hog, fill_ms, feed, cfg);
      batch_exactly_once = batch_exactly_once && s.completed == s.submitted &&
                           s2.completed == s2.submitted &&
                           drop_rate(s) == 0.0 && drop_rate(s2) == 0.0;
      if (s2.aggregate_fps > s.aggregate_fps) s = s2;
      fill_table.add_row({std::to_string(n), score::to_string(kind),
                          util::to_fixed(s.aggregate_fps, 1),
                          util::to_fixed(s.total_latency_ms.p99, 1),
                          std::to_string(s.score_batches),
                          util::to_fixed(s.score_fill, 1)});
      const std::string prefix = "runtime.bench.fill.streams_" +
                                 std::to_string(n) + "." +
                                 score::to_string(kind);
      obs::gauge_set(prefix + ".aggregate_fps", s.aggregate_fps);
      obs::gauge_set(prefix + ".mean_fill", s.score_fill);
    }
  }
  std::fputs(fill_table.to_string().c_str(), stdout);

  // The refactor's acceptance gate: batch must buy >= 1.2x aggregate fps
  // over scalar at 4 streams. A single fps sample on a busy single-core
  // host swings by 20%+, so the gate is the *median of paired ratios*:
  // each pair runs scalar then batch back to back (sharing the same host
  // noise epoch) and contributes one batch/scalar ratio.
  std::vector<double> ratios;
  obs::set_metrics_enabled(false);
  for (int pair = 0; pair < 5; ++pair) {
    RunConfig cfg;
    cfg.streams = 4;
    cfg.workers = 2;  // loaded but not drowning the scheduler in threads
    cfg.frames_per_stream = 3 * frames;
    cfg.interval_ms = 0.0;
    cfg.max_level = 0;
    cfg.backend = score::BackendKind::kScalar;
    const runtime::RuntimeStats sc =
        run_server(detector.model(), hog, fill_ms, feed, cfg);
    cfg.backend = score::BackendKind::kBatch;
    const runtime::RuntimeStats bt =
        run_server(detector.model(), hog, fill_ms, feed, cfg);
    batch_exactly_once = batch_exactly_once && sc.completed == sc.submitted &&
                         bt.completed == bt.submitted &&
                         drop_rate(sc) == 0.0 && drop_rate(bt) == 0.0;
    if (sc.aggregate_fps > 0.0) {
      ratios.push_back(bt.aggregate_fps / sc.aggregate_fps);
    }
  }
  obs::set_metrics_enabled(true);
  std::sort(ratios.begin(), ratios.end());
  const double batch_gain =
      ratios.empty() ? 0.0 : ratios[ratios.size() / 2];
  obs::gauge_set("runtime.bench.batch_gain_4", batch_gain);
  std::printf("\nbatch backend gain at 4 streams: %.2fx median of %zu paired "
              "runs (gate >= 1.2x; exactly-once in all cells: %s)\n",
              batch_gain, ratios.size(), batch_exactly_once ? "yes" : "NO");

  // --- overload: offered load past capacity, shedding instead of backlog ---
  RunConfig over;
  over.streams = 4;
  over.workers = 1;
  over.frames_per_stream = frames;
  over.interval_ms = 0.25 * service_ms;  // ~16x one worker's capacity
  over.backend = backend;
  over.queue_capacity = 4;
  over.policy = runtime::BackpressurePolicy::kDropOldest;
  const runtime::RuntimeStats ov =
      run_server(detector.model(), hog, multiscale, feed, over);
  std::printf("\noverload (4 streams -> 1 worker, queue 4, drop-oldest):\n"
              "  submitted %lld  ok %lld  degraded %lld  dropped queue %lld"
              "  deadline %lld  (drop rate %.0f%%)\n",
              ov.submitted, ov.ok, ov.degraded, ov.dropped_queue,
              ov.dropped_deadline, 100.0 * drop_rate(ov));
  obs::gauge_set("runtime.bench.overload.drop_rate", drop_rate(ov));
  obs::gauge_set("runtime.bench.overload.degraded",
                 static_cast<double>(ov.degraded));
  const bool overload_shed = ov.dropped_queue + ov.degraded +
                                 ov.dropped_deadline > 0 &&
                             ov.completed + ov.dropped_queue +
                                     ov.dropped_deadline == ov.submitted;
  std::printf("  shedding engaged with exactly-once delivery: %s\n",
              overload_shed ? "yes" : "NO");

  // --- allocation steady state across the whole runtime path ---
  // Run one warmup pass (sizes every slot, workspace and reorder buffer),
  // then count operator-new calls over a second pass through the same
  // server. obs stays on: the server's own accounting must be
  // allocation-free too.
  runtime::ServerOptions aopts;
  aopts.workers = 1;
  aopts.queue_capacity = 8;
  aopts.backpressure = runtime::BackpressurePolicy::kBlock;
  aopts.backend = backend;
  aopts.hog = hog;
  aopts.multiscale = multiscale;
  runtime::DetectionServer server(detector.model(), aopts);
  for (int s = 0; s < 2; ++s) {
    server.add_stream("cam" + std::to_string(s), nullptr);
  }
  server.start();
  const auto pass = [&] {
    for (int f = 0; f < frames; ++f) {
      for (int s = 0; s < 2; ++s) {
        (void)server.submit(
            s, feed[static_cast<std::size_t>(s)]
                   [static_cast<std::size_t>(f) %
                    feed[static_cast<std::size_t>(s)].size()]);
      }
    }
    server.drain();
  };
  pass();  // warmup: every buffer reaches its high-water mark
  pass();
  const long long before = g_heap_allocs.load();
  pass();
  const long long steady_allocs = g_heap_allocs.load() - before;
  server.stop();
  const int steady_frames = 2 * frames;
  std::printf("\nallocation steady state: %lld heap allocations across %d "
              "warm frames — expected 0\n",
              steady_allocs, steady_frames);
  obs::gauge_set("runtime.bench.steady_allocs_per_frame",
                 static_cast<double>(steady_allocs) /
                     static_cast<double>(steady_frames));

  // --- fault accounting spot check ---
  // Dashboards scraping this bench's metrics JSON alert on the same four
  // fields the serving stack exports live (runtime.health, worker faults,
  // poison frames, time-to-healthy), so exercise them for real: a short
  // armed window of engine exceptions, then clean frames until the health
  // state machine reports kHealthy again.
  runtime::ServerOptions fopts;
  fopts.workers = 1;
  fopts.queue_capacity = 8;
  fopts.backpressure = runtime::BackpressurePolicy::kBlock;
  fopts.backend = backend;
  fopts.hog = hog;
  fopts.multiscale = multiscale;
  fopts.recovery_frames = 4;
  runtime::DetectionServer fserver(detector.model(), fopts);
  fserver.add_stream("cam-fault", nullptr);
  fserver.start();
  {
    fault::Plan plan;
    plan.seed = 404;
    plan.with("runtime.engine.fault", 0.5);
    fault::ScopedPlan armed(plan);
    for (int f = 0; f < 16; ++f) {
      (void)fserver.submit(0, feed[0][static_cast<std::size_t>(f) %
                                      feed[0].size()]);
    }
    fserver.drain();
  }
  util::Timer heal;
  double time_to_healthy_ms = -1.0;  // -1 = did not recover within budget
  for (int f = 0; f < 64; ++f) {
    if (fserver.health() == runtime::HealthState::kHealthy) {
      time_to_healthy_ms = heal.milliseconds();
      break;
    }
    (void)fserver.submit(0, feed[0][static_cast<std::size_t>(f) %
                                    feed[0].size()]);
    fserver.drain();
  }
  const runtime::HealthState final_health = fserver.health();
  fserver.stop();
  const runtime::RuntimeStats fstats = fserver.stats();
  std::printf("\nfault spot check: %lld worker faults, %lld poison frames, "
              "health %s, time to healthy %.1f ms\n",
              fstats.worker_faults, fstats.poison_frames,
              runtime::to_string(final_health), time_to_healthy_ms);
  obs::gauge_set("runtime.health", static_cast<double>(final_health));
  obs::gauge_set("runtime.bench.worker_faults",
                 static_cast<double>(fstats.worker_faults));
  obs::gauge_set("runtime.bench.poison_frames",
                 static_cast<double>(fstats.poison_frames));
  obs::gauge_set("runtime.bench.time_to_healthy_ms", time_to_healthy_ms);
  const bool fault_recovered =
      fstats.worker_faults > 0 && final_health == runtime::HealthState::kHealthy;

  std::printf("elapsed: %.1f s\n", timer.seconds());
  if (!obs::report_from_cli(cli)) return 1;
  if (cli.get_string("metrics-out").empty()) {
    const char* path = "bench_runtime_throughput_metrics.json";
    if (!obs::write_file(path, obs::Registry::instance().to_json())) return 1;
    std::printf("metrics JSON written to %s\n", path);
  }
  const bool pass_ok = scaling >= 1.5 && lossless_clean && overload_shed &&
                       steady_allocs == 0 && fault_recovered &&
                       batch_gain >= 1.2 && batch_exactly_once;
  return pass_ok ? 0 : 1;
}
