// Ablation bench — fixed-point design choices of the accelerator.
//
// The paper's RTL fixes specific word lengths (and CORDIC depth) without
// reporting a sensitivity study; this bench supplies it: how the agreement
// between the fixed-point accelerator and the double-precision software
// chain depends on (a) SVM weight quantization bits, (b) normalized-feature
// bits, (c) CORDIC iterations, and (d) the shift-and-add scaler's
// coefficient bits. "Agreement" is the fraction of windows classified with
// the same sign plus the mean absolute score error over a labelled set.
#include <cmath>
#include <cstdio>

#include "src/dataset/builder.hpp"
#include "src/hog/descriptor.hpp"
#include "src/hog/feature_scale.hpp"
#include "src/hwsim/fixed_pipeline.hpp"
#include "src/imgproc/convert.hpp"
#include "src/svm/train_dcd.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/stats.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace {

using namespace pdet;

struct Agreement {
  double sign_agree = 0.0;
  double mean_abs_err = 0.0;
};

Agreement measure(const hog::HogParams& params,
                  const hwsim::FixedPointConfig& fp,
                  const svm::LinearModel& model,
                  const dataset::WindowSet& test,
                  const std::vector<float>& sw_scores) {
  const hwsim::FixedHogPipeline pipe(params, fp);
  const hwsim::QuantizedModel qmodel = hwsim::QuantizedModel::quantize(model, fp);
  int agree = 0;
  util::Accumulator abs_err;
  for (std::size_t i = 0; i < test.count(); ++i) {
    const imgproc::ImageU8 u8 = imgproc::to_u8(test.windows[i]);
    const auto blocks = pipe.normalize(pipe.compute_cells(u8));
    const double hw = pipe.classify_window(blocks, qmodel, 0, 0);
    if ((hw > 0) == (sw_scores[i] > 0)) ++agree;
    abs_err.add(std::fabs(hw - static_cast<double>(sw_scores[i])));
  }
  return {static_cast<double>(agree) / static_cast<double>(test.count()),
          abs_err.mean()};
}

/// Scaler-path agreement: classify up-scaled windows through the
/// shift-and-add feature down-scaler (the only consumer of scaler bits).
Agreement measure_scaled(const hog::HogParams& params,
                         const hwsim::FixedPointConfig& fp,
                         const svm::LinearModel& model,
                         const dataset::WindowSet& test_2x,
                         const std::vector<float>& sw_scores) {
  const hwsim::FixedHogPipeline pipe(params, fp);
  const hwsim::QuantizedModel qmodel = hwsim::QuantizedModel::quantize(model, fp);
  int agree = 0;
  util::Accumulator abs_err;
  for (std::size_t i = 0; i < test_2x.count(); ++i) {
    const imgproc::ImageU8 u8 = imgproc::to_u8(test_2x.windows[i]);
    const auto cells = pipe.compute_cells(u8);
    const auto down = pipe.downscale_cells(cells, params.cells_per_window_x(),
                                           params.cells_per_window_y());
    const auto blocks = pipe.normalize(down);
    const double hw = pipe.classify_window(blocks, qmodel, 0, 0);
    if ((hw > 0) == (sw_scores[i] > 0)) ++agree;
    abs_err.add(std::fabs(hw - static_cast<double>(sw_scores[i])));
  }
  return {static_cast<double>(agree) / static_cast<double>(test_2x.count()),
          abs_err.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_quantization", "fixed-point word-length ablation");
  cli.add_int("test-pos", 60, "positive test windows");
  cli.add_int("test-neg", 60, "negative test windows");
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);

  const hog::HogParams params;
  const dataset::WindowSet train = dataset::make_window_set(51, 200, 400);
  const svm::Dataset train_data = dataset::to_svm_dataset(train, params);
  const svm::LinearModel model = svm::train_dcd(train_data, {.C = 0.01});

  const dataset::WindowSet test = dataset::make_window_set(
      52, cli.get_int("test-pos"), cli.get_int("test-neg"));
  std::vector<float> sw_scores;
  sw_scores.reserve(test.count());
  for (const auto& w : test.windows) {
    sw_scores.push_back(model.decision(hog::compute_window_descriptor(w, params)));
  }

  std::printf("ablation: fixed-point accelerator vs double-precision software\n");
  std::printf("(%zu windows; default config: weight Q.14, feature Q.14, "
              "CORDIC 12, scaler Q.8)\n\n",
              test.count());

  auto sweep = [&](const char* title, auto mutate, std::initializer_list<int> values) {
    util::Table table({"value", "sign agreement %", "mean |score err|"});
    for (const int v : values) {
      hwsim::FixedPointConfig fp;
      mutate(fp, v);
      const Agreement a = measure(params, fp, model, test, sw_scores);
      table.add_row({util::format("%d", v), util::to_fixed(a.sign_agree * 100, 1),
                     util::format("%.4f", a.mean_abs_err)});
    }
    std::printf("--- %s ---\n%s\n", title, table.to_string().c_str());
  };

  sweep("SVM weight bits (Q.n)",
        [](hwsim::FixedPointConfig& fp, int v) { fp.weight_frac_bits = v; },
        {6, 8, 10, 12, 14, 16});
  sweep("normalized-feature bits (Q.n)",
        [](hwsim::FixedPointConfig& fp, int v) { fp.norm_frac_bits = v; },
        {6, 8, 10, 12, 14, 16});
  sweep("CORDIC iterations",
        [](hwsim::FixedPointConfig& fp, int v) { fp.cordic_iterations = v; },
        {4, 6, 8, 10, 12, 16});
  // The scaler only runs on down-scaled levels: ablate it on up-scaled
  // windows pushed through the shift-and-add down-scaler, against the
  // software feature-scaling method's scores. Scale 1.3 (not 2.0) on
  // purpose: dyadic ratios put every bilinear tap at phase 0.5, which even a
  // 2-bit coefficient represents exactly; fractional ratios exercise the
  // full phase range.
  {
    const dataset::WindowSet test_2x = dataset::upsample_window_set(test, 1.3);
    std::vector<float> sw_scaled;
    sw_scaled.reserve(test_2x.count());
    for (const auto& w : test_2x.windows) {
      const hog::CellGrid cells = hog::compute_cell_grid(w, params);
      const hog::CellGrid down = hog::scale_cell_grid(
          cells, params.cells_per_window_x(), params.cells_per_window_y(),
          hog::FeatureInterp::kBilinear);
      const hog::BlockGrid blocks = hog::normalize_cells(down, params);
      sw_scaled.push_back(model.decision(hog::extract_window(blocks, params, 0, 0)));
    }
    util::Table table({"value", "sign agreement %", "mean |score err|"});
    for (const int v : {2, 4, 6, 8, 10}) {
      hwsim::FixedPointConfig fp;
      fp.scale_frac_bits = v;
      const Agreement a = measure_scaled(params, fp, model, test_2x, sw_scaled);
      table.add_row({util::format("%d", v), util::to_fixed(a.sign_agree * 100, 1),
                     util::format("%.4f", a.mean_abs_err)});
    }
    std::printf("--- scaler coefficient bits (Q.n), via 1.3x feature down-scale ---\n%s\n",
                table.to_string().c_str());
  }

  std::printf(
      "reading: the paper's implicit choices (Q.14 weights/features, ~12\n"
      "CORDIC stages, Q.8 scaler taps) sit on the flat part of every curve —\n"
      "fewer bits start costing sign agreement, more buy nothing.\n");
  return 0;
}
