// Frame-level detection comparison: feature pyramid vs image pyramid.
//
// Extends the paper's window-level Table 1 to the operational question — do
// the two pyramid strategies detect the same pedestrians in whole frames? —
// using the standard miss-rate / FPPI protocol (Dollar et al. [6], the
// evaluation framework of the pedestrian-detection literature the paper
// cites). Also reports the effect of hard-negative bootstrapping.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/core/bootstrap.hpp"
#include "src/core/pedestrian_detector.hpp"
#include "src/detect/engine.hpp"
#include "src/dataset/scene.hpp"
#include "src/eval/detection_eval.hpp"
#include "src/hog/descriptor.hpp"
#include "src/hwsim/score_backend.hpp"
#include "src/hwsim/timing.hpp"
#include "src/obs/report.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/stats.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

// Ground-truth heap accounting for the zero-allocation claim: every
// operator-new in this binary bumps a counter, so the steady-state section
// below measures what the engine *actually* allocates per frame, not what
// its own capacity bookkeeping believes.
namespace {
std::atomic<long long> g_heap_allocs{0};
std::atomic<long long> g_heap_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(static_cast<long long>(size),
                         std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pdet;

struct FrameSet {
  std::vector<dataset::Scene> scenes;
  std::vector<std::vector<eval::GroundTruth>> truth;
};

FrameSet make_frames(int count, std::uint64_t seed) {
  FrameSet set;
  util::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    dataset::SceneOptions opts;
    opts.width = 512;
    opts.height = 384;
    opts.camera.focal_px = 1000.0;
    opts.clutter_density = 1.5;
    // One or two pedestrians in the scale-1..2 band; some frames empty.
    opts.pedestrian_distances_m.clear();
    const int n = rng.uniform_int(0, 2);
    for (int k = 0; k < n; ++k) {
      opts.pedestrian_distances_m.push_back(rng.uniform(7.0, 18.0));
    }
    set.scenes.push_back(dataset::render_scene(rng, opts));
    std::vector<eval::GroundTruth> gt;
    for (const auto& t : set.scenes.back().truth) {
      gt.push_back({t.x, t.y, t.width, t.height});
    }
    set.truth.push_back(std::move(gt));
  }
  return set;
}

struct Summary {
  double lamr = 0.0;        ///< log-average miss rate
  double mr_at_1fppi = 1.0;
  std::size_t curve_points = 0;
};

Summary evaluate(core::PedestrianDetector& detector, const FrameSet& frames) {
  std::vector<std::vector<detect::Detection>> dets;
  auto& ms = detector.mutable_config().multiscale;
  const float saved = ms.scan.threshold;
  ms.scan.threshold = -0.6f;  // sweep range; eval varies the threshold
  for (const auto& scene : frames.scenes) {
    dets.push_back(detector.detect(scene.image).detections);
  }
  ms.scan.threshold = saved;
  const auto curve = eval::miss_rate_curve(dets, frames.truth);
  Summary s;
  s.lamr = eval::log_average_miss_rate(curve);
  s.curve_points = curve.size();
  for (const auto& p : curve) {
    if (p.fppi <= 1.0) s.mr_at_1fppi = std::min(s.mr_at_1fppi, p.miss_rate);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_frame_detection",
                "miss rate vs FPPI, feature vs image pyramid");
  cli.add_int("frames", 24, "evaluation frames");
  cli.add_int("threads", 1, "pyramid-level lanes in the detection engine");
  cli.add_string("backend", "scalar",
                 "scoring backend: scalar | batch | hwsim");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  score::BackendKind backend = score::BackendKind::kScalar;
  if (!score::parse_backend(cli.get_string("backend"), backend)) {
    std::fprintf(stderr, "unknown --backend %s (want scalar|batch|hwsim)\n",
                 cli.get_string("backend").c_str());
    return 1;
  }
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  // Benches always aggregate metrics — the per-stage JSON below rides on them.
  obs::set_metrics_enabled(true);
  util::Timer timer;

  core::PedestrianDetector detector;
  const dataset::WindowSet train = dataset::make_window_set(71, 300, 600);
  detector.train(train);
  auto& ms = detector.mutable_config().multiscale;
  ms.scales = {1.0, 1.26, 1.59, 2.0};
  const int threads = cli.get_int("threads");
  detector.mutable_config().threads = threads;
  // hwsim is a constructed device, not a bare enum: build it once and share
  // it with every engine in this binary.
  hwsim::HwsimScoreBackend hwsim_device;
  if (backend == score::BackendKind::kHwsim) {
    detector.mutable_config().scorer = &hwsim_device;
  } else {
    detector.mutable_config().backend = backend;
  }

  const FrameSet frames = make_frames(cli.get_int("frames"), 555);
  std::size_t total_truth = 0;
  for (const auto& t : frames.truth) total_truth += t.size();
  std::printf("E8: frame-level evaluation on %zu frames, %zu pedestrians\n\n",
              frames.scenes.size(), total_truth);

  util::Table table({"configuration", "log-avg miss rate", "miss rate @1 FPPI"});
  auto add = [&](const char* name, const Summary& s) {
    table.add_row({name, util::to_fixed(s.lamr, 3), util::to_fixed(s.mr_at_1fppi, 3)});
  };

  ms.strategy = detect::PyramidStrategy::kFeature;
  add("feature pyramid (paper)", evaluate(detector, frames));
  ms.strategy = detect::PyramidStrategy::kImage;
  add("image pyramid (baseline)", evaluate(detector, frames));

  // Bootstrapped model, both strategies.
  core::BootstrapOptions bopts;
  bopts.negative_scenes = 8;
  core::bootstrap_hard_negatives(detector, train, bopts);
  ms.strategy = detect::PyramidStrategy::kFeature;
  add("feature pyramid + hard negatives", evaluate(detector, frames));
  ms.strategy = detect::PyramidStrategy::kImage;
  add("image pyramid + hard negatives", evaluate(detector, frames));

  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nexpected shape: the two pyramid strategies perform comparably (the\n"
      "paper's claim at the window level carries to frames), and hard-\n"
      "negative mining helps or is neutral on both.\n");

  // --- occlusion robustness: window recall vs hidden body fraction ---
  std::printf("\n--- occlusion robustness (window recall at threshold 0) ---\n");
  util::Table occ_table({"occluded frac", "recall %", "mean score"});
  for (const double frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    dataset::RenderOptions ropts;
    ropts.occlusion_frac = frac;
    const dataset::WindowSet test = dataset::make_window_set(909, 120, 0, ropts);
    int recalled = 0;
    util::Accumulator scores;
    for (const auto& w : test.windows) {
      const auto desc =
          hog::compute_window_descriptor(w, detector.config().hog);
      const float s = detector.model().decision(desc);
      if (s > 0) ++recalled;
      scores.add(s);
    }
    occ_table.add_row(
        {util::to_fixed(frac, 1),
         util::to_fixed(100.0 * recalled / static_cast<double>(scores.count()), 1),
         util::to_fixed(scores.mean(), 3)});
  }
  std::fputs(occ_table.to_string().c_str(), stdout);
  std::printf("(lower-body occlusion degrades recall gracefully — legs carry\n"
              " much of the HOG signature, as Dalal & Triggs observed)\n");

  // --- engine allocation steady state ---
  // The paper's accelerator streams through fixed buffers; the host engine
  // must match: frame 1 sizes the workspace, every later frame allocates
  // nothing. Measured with the global operator-new counter above; obs is
  // switched off during the measurement so histogram bookkeeping does not
  // pollute the count.
  std::printf("\n--- engine allocation steady state (%d thread%s, %s backend) ---\n",
              threads, threads == 1 ? "" : "s", score::to_string(backend));
  ms.strategy = detect::PyramidStrategy::kFeature;
  detect::DetectionEngine engine(detect::EngineOptions{.threads = threads});
  if (backend == score::BackendKind::kHwsim) {
    engine.set_scorer(&hwsim_device);
  } else {
    engine.set_backend(backend);
  }
  const imgproc::ImageF& alloc_frame = frames.scenes.front().image;
  const auto run_frame = [&] {
    (void)engine.process(alloc_frame, detector.config().hog, detector.model(),
                         detector.config().multiscale);
  };
  obs::set_metrics_enabled(false);
  const long long before_first = g_heap_allocs.load();
  run_frame();
  const long long first_frame_allocs = g_heap_allocs.load() - before_first;
  run_frame();  // one extra warm-up so every vector reaches its high-water
  constexpr int kSteadyFrames = 5;
  const long long before_steady = g_heap_allocs.load();
  for (int i = 0; i < kSteadyFrames; ++i) run_frame();
  const long long steady_allocs =
      (g_heap_allocs.load() - before_steady) / kSteadyFrames;
  obs::set_metrics_enabled(true);
  std::printf("first frame:  %lld heap allocations (%.1f KiB workspace)\n",
              first_frame_allocs,
              static_cast<double>(engine.stats().alloc_bytes) / 1024.0);
  std::printf("steady state: %lld heap allocations per frame (over %d frames)"
              " — expected 0\n",
              steady_allocs, kSteadyFrames);
  obs::gauge_set("engine.first_frame_allocs",
                 static_cast<double>(first_frame_allocs));
  obs::gauge_set("engine.steady_frame_allocs",
                 static_cast<double>(steady_allocs));
  std::printf("elapsed: %.1f s\n", timer.seconds());

  // Per-stage metrics JSON alongside the tables: what the detector actually
  // did (windows, latency percentiles) plus the modeled accelerator cycles.
  const hwsim::TimingModel timing(hwsim::timing_config_for_frame(512, 384));
  hwsim::publish_timing_metrics(timing, ms.scales);
  if (!obs::report_from_cli(cli)) return 1;
  if (cli.get_string("metrics-out").empty()) {
    const char* path = "bench_frame_detection_metrics.json";
    if (!obs::write_file(path, obs::Registry::instance().to_json())) return 1;
    std::printf("metrics JSON written to %s\n", path);
  }
  return 0;
}
