// Frame-level detection comparison: feature pyramid vs image pyramid.
//
// Extends the paper's window-level Table 1 to the operational question — do
// the two pyramid strategies detect the same pedestrians in whole frames? —
// using the standard miss-rate / FPPI protocol (Dollar et al. [6], the
// evaluation framework of the pedestrian-detection literature the paper
// cites). Also reports the effect of hard-negative bootstrapping.
#include <cstdio>
#include <vector>

#include "src/core/bootstrap.hpp"
#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/scene.hpp"
#include "src/eval/detection_eval.hpp"
#include "src/hog/descriptor.hpp"
#include "src/hwsim/timing.hpp"
#include "src/obs/report.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/stats.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace pdet;

struct FrameSet {
  std::vector<dataset::Scene> scenes;
  std::vector<std::vector<eval::GroundTruth>> truth;
};

FrameSet make_frames(int count, std::uint64_t seed) {
  FrameSet set;
  util::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    dataset::SceneOptions opts;
    opts.width = 512;
    opts.height = 384;
    opts.camera.focal_px = 1000.0;
    opts.clutter_density = 1.5;
    // One or two pedestrians in the scale-1..2 band; some frames empty.
    opts.pedestrian_distances_m.clear();
    const int n = rng.uniform_int(0, 2);
    for (int k = 0; k < n; ++k) {
      opts.pedestrian_distances_m.push_back(rng.uniform(7.0, 18.0));
    }
    set.scenes.push_back(dataset::render_scene(rng, opts));
    std::vector<eval::GroundTruth> gt;
    for (const auto& t : set.scenes.back().truth) {
      gt.push_back({t.x, t.y, t.width, t.height});
    }
    set.truth.push_back(std::move(gt));
  }
  return set;
}

struct Summary {
  double lamr = 0.0;        ///< log-average miss rate
  double mr_at_1fppi = 1.0;
  std::size_t curve_points = 0;
};

Summary evaluate(core::PedestrianDetector& detector, const FrameSet& frames) {
  std::vector<std::vector<detect::Detection>> dets;
  auto& ms = detector.mutable_config().multiscale;
  const float saved = ms.scan.threshold;
  ms.scan.threshold = -0.6f;  // sweep range; eval varies the threshold
  for (const auto& scene : frames.scenes) {
    dets.push_back(detector.detect(scene.image).detections);
  }
  ms.scan.threshold = saved;
  const auto curve = eval::miss_rate_curve(dets, frames.truth);
  Summary s;
  s.lamr = eval::log_average_miss_rate(curve);
  s.curve_points = curve.size();
  for (const auto& p : curve) {
    if (p.fppi <= 1.0) s.mr_at_1fppi = std::min(s.mr_at_1fppi, p.miss_rate);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_frame_detection",
                "miss rate vs FPPI, feature vs image pyramid");
  cli.add_int("frames", 24, "evaluation frames");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  // Benches always aggregate metrics — the per-stage JSON below rides on them.
  obs::set_metrics_enabled(true);
  util::Timer timer;

  core::PedestrianDetector detector;
  const dataset::WindowSet train = dataset::make_window_set(71, 300, 600);
  detector.train(train);
  auto& ms = detector.mutable_config().multiscale;
  ms.scales = {1.0, 1.26, 1.59, 2.0};

  const FrameSet frames = make_frames(cli.get_int("frames"), 555);
  std::size_t total_truth = 0;
  for (const auto& t : frames.truth) total_truth += t.size();
  std::printf("E8: frame-level evaluation on %zu frames, %zu pedestrians\n\n",
              frames.scenes.size(), total_truth);

  util::Table table({"configuration", "log-avg miss rate", "miss rate @1 FPPI"});
  auto add = [&](const char* name, const Summary& s) {
    table.add_row({name, util::to_fixed(s.lamr, 3), util::to_fixed(s.mr_at_1fppi, 3)});
  };

  ms.strategy = detect::PyramidStrategy::kFeature;
  add("feature pyramid (paper)", evaluate(detector, frames));
  ms.strategy = detect::PyramidStrategy::kImage;
  add("image pyramid (baseline)", evaluate(detector, frames));

  // Bootstrapped model, both strategies.
  core::BootstrapOptions bopts;
  bopts.negative_scenes = 8;
  core::bootstrap_hard_negatives(detector, train, bopts);
  ms.strategy = detect::PyramidStrategy::kFeature;
  add("feature pyramid + hard negatives", evaluate(detector, frames));
  ms.strategy = detect::PyramidStrategy::kImage;
  add("image pyramid + hard negatives", evaluate(detector, frames));

  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nexpected shape: the two pyramid strategies perform comparably (the\n"
      "paper's claim at the window level carries to frames), and hard-\n"
      "negative mining helps or is neutral on both.\n");

  // --- occlusion robustness: window recall vs hidden body fraction ---
  std::printf("\n--- occlusion robustness (window recall at threshold 0) ---\n");
  util::Table occ_table({"occluded frac", "recall %", "mean score"});
  for (const double frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    dataset::RenderOptions ropts;
    ropts.occlusion_frac = frac;
    const dataset::WindowSet test = dataset::make_window_set(909, 120, 0, ropts);
    int recalled = 0;
    util::Accumulator scores;
    for (const auto& w : test.windows) {
      const auto desc =
          hog::compute_window_descriptor(w, detector.config().hog);
      const float s = detector.model().decision(desc);
      if (s > 0) ++recalled;
      scores.add(s);
    }
    occ_table.add_row(
        {util::to_fixed(frac, 1),
         util::to_fixed(100.0 * recalled / static_cast<double>(scores.count()), 1),
         util::to_fixed(scores.mean(), 3)});
  }
  std::fputs(occ_table.to_string().c_str(), stdout);
  std::printf("(lower-body occlusion degrades recall gracefully — legs carry\n"
              " much of the HOG signature, as Dalal & Triggs observed)\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());

  // Per-stage metrics JSON alongside the tables: what the detector actually
  // did (windows, latency percentiles) plus the modeled accelerator cycles.
  const hwsim::TimingModel timing(hwsim::timing_config_for_frame(512, 384));
  hwsim::publish_timing_metrics(timing, ms.scales);
  if (!obs::report_from_cli(cli)) return 1;
  if (cli.get_string("metrics-out").empty()) {
    const char* path = "bench_frame_detection_metrics.json";
    if (!obs::write_file(path, obs::Registry::instance().to_json())) return 1;
    std::printf("metrics JSON written to %s\n", path);
  }
  return 0;
}
