// Guard-plane cost and payoff: gate overhead, latency-to-quarantine, seeded
// chaos detection, and the coasting-recall experiment.
//
// The input-integrity gate (pdet::guard) buys fault containment with one
// extra pass over every frame on the producer thread. This bench pins the
// four quantitative claims behind it:
//
//   1. Overhead: on a 4-stream runtime server the gate consumes at most 2%
//      of the per-frame compute budget. Measured from the guard-on run's own
//      frame timelines (gate hop vs engine service time), which pairs the
//      gate cost with the detection cost frame by frame — end-to-end fps of
//      both arms is also reported, but single-core CI boxes jitter far more
//      than 2% run to run, so the paired per-frame share is the gate.
//   2. Latency-to-quarantine: for every sensor fault class that renders
//      frames unusable (freeze, blackout, dead rows, tear, gain slam), the
//      camera-health ladder quarantines within quarantine_after frames of
//      the first faulty frame (+small slack).
//   3. Detection: across seeded chaos schedules, every injected freeze /
//      blackout / dead-row frame comes back kDegradedInput; across clean
//      seeds, zero gate verdicts and zero false quarantines.
//   4. Coasting recall: on an approach sequence with freeze and blackout
//      bursts, predicting through gated frames (guard on) recovers at least
//      as much fault-window recall as running the detector on the corrupted
//      frames (guard off).
//
// Every run is seeded; a regression reproduces byte-for-byte. The exit code
// carries the acceptance gates.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/multistream.hpp"
#include "src/dataset/scene.hpp"
#include "src/dataset/builder.hpp"
#include "src/detect/tracker.hpp"
#include "src/fault/injector.hpp"
#include "src/guard/gate.hpp"
#include "src/guard/health.hpp"
#include "src/guard/sensor.hpp"
#include "src/obs/report.hpp"
#include "src/runtime/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace pdet;

imgproc::ImageF noise_frame(int width, int height, std::uint64_t seed) {
  util::Rng rng(seed);
  imgproc::ImageF img(width, height);
  for (float& p : img.pixels()) {
    p = static_cast<float>(rng.uniform(0.1, 0.9));
  }
  return img;
}

svm::LinearModel make_model(const hog::HogParams& params, std::uint64_t seed) {
  util::Rng rng(seed);
  svm::LinearModel model;
  model.weights.resize(static_cast<std::size_t>(params.descriptor_size()));
  for (float& w : model.weights) {
    w = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  model.bias = -0.25f;
  return model;
}

runtime::ServerOptions bench_options(int streams, bool guard_on) {
  runtime::ServerOptions opts;
  opts.workers = streams;
  opts.queue_capacity = static_cast<std::size_t>(2 * streams);
  opts.backpressure = runtime::BackpressurePolicy::kBlock;
  opts.scheduler.max_level = 0;  // fixed work per frame: clean fps compare
  opts.multiscale.scales = {1.0, 1.5};
  opts.guard.enabled = guard_on;
  return opts;
}

// --- 1. gate overhead -------------------------------------------------------

struct ThroughputRun {
  double fps = 0.0;
  double gate_share = 0.0;  ///< gate ns / (gate ns + engine service ns)
  bool clean = false;       ///< no gate verdicts fired on the live frames
};

/// One timed run: `frames` frames on each of `streams` streams, cycling a
/// small pool of distinct live-noise frames (consecutive frames on a stream
/// always differ, so the gate never fires). With the guard on, the per-frame
/// timeline pairs the gate's nanoseconds against the engine's on identical
/// frames — that ratio is the overhead estimate the acceptance gate uses.
ThroughputRun run_throughput(bool guard_on, int streams, int frames) {
  const runtime::ServerOptions opts = bench_options(streams, guard_on);
  const svm::LinearModel model = make_model(opts.hog, 7);
  runtime::DetectionServer server(model, opts);
  // Per-stream accumulators: deliveries within a stream are serialized, so
  // each slot is touched by one thread at a time.
  std::vector<double> gate_ns(static_cast<std::size_t>(streams), 0.0);
  std::vector<double> service_ns(static_cast<std::size_t>(streams), 0.0);
  for (int s = 0; s < streams; ++s) {
    const auto slot = static_cast<std::size_t>(s);
    server.add_stream("cam" + std::to_string(s),
                      [&, slot](const runtime::StreamResult& r) {
                        if (r.timing.gate_ns != 0) {
                          gate_ns[slot] += static_cast<double>(
                              r.timing.gate_ns - r.timing.service_recv_ns);
                        }
                        service_ns[slot] += r.service_ms * 1e6;
                      });
  }
  // Pre-rendered pool: 8 distinct frames per stream, outside the timed
  // region, so both arms submit identical bytes and pay zero render cost.
  constexpr int kPool = 8;
  std::vector<imgproc::ImageF> pool;
  pool.reserve(static_cast<std::size_t>(streams * kPool));
  for (int s = 0; s < streams; ++s) {
    for (int i = 0; i < kPool; ++i) {
      pool.push_back(noise_frame(
          256, 192, 1000 + static_cast<std::uint64_t>(s * kPool + i)));
    }
  }
  server.start();
  util::Timer timer;
  for (int f = 0; f < frames; ++f) {
    for (int s = 0; s < streams; ++s) {
      (void)server.submit(
          s, pool[static_cast<std::size_t>(s * kPool + f % kPool)]);
    }
  }
  server.drain();
  const double elapsed = timer.seconds();
  server.stop();
  const runtime::RuntimeStats stats = server.stats();
  ThroughputRun out;
  out.fps = static_cast<double>(streams) * frames / elapsed;
  out.clean = stats.guard_unusable == 0 && stats.guard_soft == 0;
  double gate_total = 0.0;
  double service_total = 0.0;
  for (int s = 0; s < streams; ++s) {
    gate_total += gate_ns[static_cast<std::size_t>(s)];
    service_total += service_ns[static_cast<std::size_t>(s)];
  }
  if (gate_total + service_total > 0.0) {
    out.gate_share = gate_total / (gate_total + service_total);
  }
  return out;
}

// --- 2. latency to quarantine -----------------------------------------------

struct QuarantineLatency {
  std::string fault;
  int frames_to_quarantine = -1;  ///< from the first faulty frame, inclusive
};

/// Drive gate + camera directly under a single always-on fault site; count
/// frames from the first corrupted frame until the ladder reads quarantined.
QuarantineLatency measure_quarantine(const std::string& site,
                                     std::uint32_t param) {
  QuarantineLatency out;
  out.fault = site;
  fault::Plan plan;
  plan.seed = 31;
  plan.with(site, 1.0, param, /*skip=*/3);  // 3 clean frames of history first
  fault::ScopedPlan armed(plan);
  guard::SensorSimulator sensor(5, 1);
  guard::FrameGuard gate;
  guard::CameraHealth camera;
  int first_fault = -1;
  for (int f = 0; f < 32; ++f) {
    imgproc::ImageF frame =
        noise_frame(128, 96, 4000 + static_cast<std::uint64_t>(f));
    const std::uint32_t mask =
        sensor.apply(0, static_cast<std::uint64_t>(f), frame);
    if (mask != 0 && first_fault < 0) first_fault = f;
    const guard::CameraState state = camera.observe(gate.inspect(frame).quality);
    if (state == guard::CameraState::kQuarantined && first_fault >= 0) {
      out.frames_to_quarantine = f - first_fault + 1;
      break;
    }
  }
  return out;
}

// --- 3. seeded chaos detection + clean seeds --------------------------------

struct ChaosOutcome {
  long long injected = 0;   ///< frames carrying freeze/blackout/dead-rows
  long long detected = 0;   ///< of those, delivered kDegradedInput
  long long quarantines = 0;
  bool exactly_once = false;
};

ChaosOutcome run_chaos_seed(std::uint64_t seed, int frames) {
  fault::Plan plan;
  plan.seed = seed;
  plan.with("sensor.frame.freeze", 0.15)
      .with("sensor.frame.blackout", 0.10)
      .with("sensor.rows.dead", 0.10, /*param=*/10);
  fault::ScopedPlan armed(plan);

  const runtime::ServerOptions opts = bench_options(1, /*guard_on=*/true);
  const svm::LinearModel model = make_model(opts.hog, 7);
  runtime::DetectionServer server(model, opts);
  std::vector<runtime::FrameStatus> statuses;
  server.add_stream("cam0", [&](const runtime::StreamResult& r) {
    statuses.push_back(r.status);
  });
  server.start();
  guard::SensorSimulator sensor(seed ^ 0x9e37u, 1);
  std::vector<std::uint32_t> masks;
  for (int f = 0; f < frames; ++f) {
    imgproc::ImageF frame =
        noise_frame(160, 120, seed * 100 + static_cast<std::uint64_t>(f));
    masks.push_back(sensor.apply(0, static_cast<std::uint64_t>(f), frame));
    (void)server.submit(0, frame);
  }
  server.drain();
  server.stop();

  ChaosOutcome out;
  constexpr std::uint32_t kHardFaults =
      guard::kFaultFreeze | guard::kFaultBlackout | guard::kFaultDeadRows;
  for (int f = 0; f < frames; ++f) {
    const auto i = static_cast<std::size_t>(f);
    if (masks[i] & kHardFaults) {
      ++out.injected;
      if (i < statuses.size() &&
          statuses[i] == runtime::FrameStatus::kDegradedInput) {
        ++out.detected;
      }
    }
  }
  const runtime::RuntimeStats stats = server.stats();
  out.quarantines = static_cast<long long>(stats.camera_quarantines);
  out.exactly_once =
      stats.submitted == stats.completed + stats.dropped_queue +
                             stats.dropped_deadline + stats.errors +
                             stats.guard_unusable &&
      statuses.size() == static_cast<std::size_t>(frames);
  return out;
}

/// Rendered street scenes, no fault plan: the gate must stay silent.
bool run_clean_seed(std::uint64_t seed, int frames, std::string* why) {
  const runtime::ServerOptions opts = bench_options(1, /*guard_on=*/true);
  const svm::LinearModel model = make_model(opts.hog, 7);
  runtime::DetectionServer server(model, opts);
  server.add_stream("cam0", [](const runtime::StreamResult&) {});
  dataset::MultiStreamOptions mopts;
  mopts.scene.width = 192;
  mopts.scene.height = 144;
  mopts.scene.camera.focal_px = 420.0;
  const dataset::MultiStreamSource source(seed, mopts);
  server.start();
  for (int f = 0; f < frames; ++f) {
    (void)server.submit(0, source.frame(0, f).image);
  }
  server.drain();
  server.stop();
  const runtime::RuntimeStats stats = server.stats();
  if (stats.guard_unusable != 0 || stats.guard_soft != 0 ||
      stats.camera_quarantines != 0 || stats.cameras_suspect != 0) {
    *why = "seed " + std::to_string(seed) + ": unusable " +
           std::to_string(stats.guard_unusable) + " soft " +
           std::to_string(stats.guard_soft) + " quarantines " +
           std::to_string(stats.camera_quarantines);
    return false;
  }
  return true;
}

// --- 4. coasting recall -----------------------------------------------------

double iou(const detect::Detection& a, const dataset::GroundTruthBox& b) {
  const int x1 = std::max(a.x, b.x);
  const int y1 = std::max(a.y, b.y);
  const int x2 = std::min(a.x + a.width, b.x + b.width);
  const int y2 = std::min(a.y + a.height, b.y + b.height);
  const int iw = std::max(0, x2 - x1);
  const int ih = std::max(0, y2 - y1);
  const double inter = static_cast<double>(iw) * ih;
  const double uni = static_cast<double>(a.width) * a.height +
                     static_cast<double>(b.width) * b.height - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

struct RecallOutcome {
  int fault_frames = 0;
  int fault_recalled = 0;
  double fault_recall() const {
    return fault_frames > 0
               ? static_cast<double>(fault_recalled) / fault_frames
               : 1.0;
  }
};

/// One pedestrian walking in from 14m to 7m over `frames` frames, with a
/// freeze burst and a blackout burst injected mid-approach. Guard on: gated
/// frames are coasted with tracker predictions (exactly the runtime server's
/// policy). Guard off: the detector runs on the corrupted bytes. Recall is
/// counted on the fault frames only — that is where the two arms differ.
RecallOutcome run_recall_arm(core::PedestrianDetector& detector, int frames,
                             bool guard_on) {
  fault::Plan plan;
  plan.seed = 3;
  // Frames 12-16 frozen, 24-28 black (probability 1 + skip/max_fires: the
  // schedule is arithmetic, not random, so both arms corrupt identically).
  plan.with("sensor.frame.freeze", 1.0, /*param=*/0, /*skip=*/12,
            /*max_fires=*/5);
  plan.with("sensor.frame.blackout", 1.0, /*param=*/0, /*skip=*/24,
            /*max_fires=*/5);
  fault::ScopedPlan armed(plan);
  guard::SensorSimulator sensor(17, 1);
  guard::FrameGuard gate;
  detect::Tracker tracker;
  util::Rng rng(902);

  RecallOutcome out;
  int coast = 0;
  for (int f = 0; f < frames; ++f) {
    dataset::SceneOptions sopts;
    sopts.width = 512;
    sopts.height = 384;
    sopts.camera.focal_px = 1000.0;
    const double t = static_cast<double>(f) / std::max(1, frames - 1);
    sopts.pedestrian_distances_m = {14.0 - 7.0 * t};
    dataset::Scene scene = dataset::render_scene(rng, sopts);
    const std::uint32_t mask =
        sensor.apply(0, static_cast<std::uint64_t>(f), scene.image);

    std::vector<detect::Detection> boxes;
    bool coasted = false;
    if (guard_on &&
        gate.inspect(scene.image).quality == guard::FrameQuality::kUnusable) {
      ++coast;
      tracker.predict_boxes(coast, boxes);  // tracker state stays frozen
      coasted = true;
    } else {
      if (!guard_on) {
        // Keep the two arms' gate history comparable: inspect() above only
        // runs in the guard arm, and the simulator's freeze replay needs no
        // gate state, so nothing else to do here.
      }
      boxes = detector.detect(scene.image).detections;
      tracker.update(boxes);
      coast = 0;
    }
    (void)coasted;
    if (mask != 0) {
      ++out.fault_frames;
      bool hit = false;
      for (const auto& truth : scene.truth) {
        for (const auto& b : boxes) {
          if (iou(b, truth) >= 0.5) {
            hit = true;
            break;
          }
        }
      }
      if (hit || scene.truth.empty()) ++out.fault_recalled;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_guard_overhead",
                "gate overhead, latency-to-quarantine, chaos detection and "
                "coasting recall for the input-integrity plane");
  cli.add_int("frames", 48, "frames per stream in each overhead rep");
  cli.add_int("streams", 4, "streams in the overhead runs");
  cli.add_int("reps", 3, "overhead repetitions per arm (best median wins)");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kError);
  obs::configure_from_cli(cli);
  obs::set_metrics_enabled(true);
  util::Timer timer;
  bool accept = true;

  // 1. Overhead: alternate arms so drift hits both equally. End-to-end fps
  // is context; the acceptance gate is the paired per-frame gate share from
  // the guard-on runs (median across reps).
  const int frames = cli.get_int("frames");
  const int streams = cli.get_int("streams");
  const int reps = cli.get_int("reps");
  std::vector<double> fps_off;
  std::vector<double> fps_on;
  std::vector<double> shares;
  bool quiet = true;
  for (int r = 0; r < reps; ++r) {
    const ThroughputRun off = run_throughput(false, streams, frames);
    const ThroughputRun on = run_throughput(true, streams, frames);
    fps_off.push_back(off.fps);
    fps_on.push_back(on.fps);
    shares.push_back(on.gate_share);
    quiet = quiet && off.clean && on.clean;
  }
  std::sort(fps_off.begin(), fps_off.end());
  std::sort(fps_on.begin(), fps_on.end());
  std::sort(shares.begin(), shares.end());
  const double base = fps_off[fps_off.size() / 2];
  const double gated = fps_on[fps_on.size() / 2];
  const double share = shares[shares.size() / 2];
  const bool overhead_ok = quiet && share > 0.0 && share <= 0.02;
  accept = accept && overhead_ok;
  std::printf("gate overhead: %d streams x %d frames, median of %d reps\n"
              "  guard off %.1f fps, guard on %.1f fps (context; box jitter "
              "exceeds the budget)\n"
              "  gate share of per-frame compute %.4f (gate <= 0.02), "
              "live frames silent: %s -> %s\n\n",
              streams, frames, reps, base, gated, share,
              quiet ? "yes" : "NO", overhead_ok ? "PASS" : "FAIL");
  obs::gauge_set("guard.bench.fps_base", base);
  obs::gauge_set("guard.bench.fps_gated", gated);
  obs::gauge_set("guard.bench.gate_share", share);

  // 2. Latency to quarantine per fault class.
  const guard::CameraHealthOptions ladder;
  const int budget = ladder.quarantine_after + 2;
  util::Table qtable({"fault", "frames to quarantine", "budget", "ok"});
  const std::vector<std::pair<std::string, std::uint32_t>> fault_classes = {
      {"sensor.frame.freeze", 0},   {"sensor.frame.blackout", 0},
      {"sensor.rows.dead", 10},     {"sensor.frame.tear", 0},
      {"sensor.gain.drift", 5000},  // gain x50: every pixel clamps to 1.0
  };
  for (const auto& [site, param] : fault_classes) {
    const QuarantineLatency q = measure_quarantine(site, param);
    const bool ok = q.frames_to_quarantine > 0 &&
                    q.frames_to_quarantine <= budget;
    accept = accept && ok;
    qtable.add_row({q.fault,
                    q.frames_to_quarantine > 0
                        ? std::to_string(q.frames_to_quarantine)
                        : "never",
                    std::to_string(budget), ok ? "yes" : "NO"});
    obs::gauge_set("guard.bench.quarantine_frames." + site,
                   static_cast<double>(q.frames_to_quarantine));
  }
  std::printf("latency to quarantine (quarantine_after = %d):\n%s\n",
              ladder.quarantine_after, qtable.to_string().c_str());

  // 3. Seeded chaos detection + clean seeds.
  util::Table ctable({"seed", "injected", "detected", "quarantines",
                      "exactly once", "ok"});
  for (const std::uint64_t seed : {3ull, 17ull, 99ull, 512ull, 2026ull}) {
    const ChaosOutcome c = run_chaos_seed(seed, 30);
    const bool ok = c.injected > 0 && c.detected == c.injected &&
                    c.exactly_once;
    accept = accept && ok;
    ctable.add_row({std::to_string(seed), std::to_string(c.injected),
                    std::to_string(c.detected), std::to_string(c.quarantines),
                    c.exactly_once ? "yes" : "NO", ok ? "yes" : "NO"});
  }
  std::printf("seeded sensor chaos through the runtime server:\n%s\n",
              ctable.to_string().c_str());

  int clean_ok = 0;
  std::string clean_why;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    if (run_clean_seed(seed, 12, &clean_why)) {
      ++clean_ok;
    } else {
      std::fprintf(stderr, "false positive: %s\n", clean_why.c_str());
    }
  }
  const bool clean_pass = clean_ok == 10;
  accept = accept && clean_pass;
  std::printf("clean rendered seeds with the gate armed: %d/10 silent "
              "(zero verdicts, zero quarantines): %s\n\n",
              clean_ok, clean_pass ? "PASS" : "FAIL");
  obs::gauge_set("guard.bench.clean_seeds_silent",
                 static_cast<double>(clean_ok));

  // 4. Coasting recall on the approach sequence.
  core::PedestrianDetector detector;
  detector.train(dataset::make_window_set(71, 300, 600));
  detector.mutable_config().multiscale.scales = {1.0, 1.26, 1.59, 2.0};
  const RecallOutcome coasting = run_recall_arm(detector, 36, true);
  const RecallOutcome raw = run_recall_arm(detector, 36, false);
  const bool recall_ok =
      coasting.fault_frames == raw.fault_frames &&
      coasting.fault_recalled >= raw.fault_recalled;
  accept = accept && recall_ok;
  std::printf("coasting recall on %d fault frames (freeze + blackout bursts, "
              "IoU >= 0.5):\n"
              "  guard on (coast)  %d/%d = %.2f\n"
              "  guard off (detect) %d/%d = %.2f\n"
              "  coasting >= raw: %s\n",
              coasting.fault_frames, coasting.fault_recalled,
              coasting.fault_frames, coasting.fault_recall(),
              raw.fault_recalled, raw.fault_frames, raw.fault_recall(),
              recall_ok ? "PASS" : "FAIL");
  obs::gauge_set("guard.bench.coast_recall", coasting.fault_recall());
  obs::gauge_set("guard.bench.raw_recall", raw.fault_recall());

  std::printf("\nall gates: %s\nelapsed: %.1f s\n", accept ? "PASS" : "FAIL",
              timer.seconds());
  obs::gauge_set("guard.bench.accept", accept ? 1.0 : 0.0);
  if (!obs::report_from_cli(cli)) return 1;
  return accept ? 0 : 1;
}
