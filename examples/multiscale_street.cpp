// Multi-scale street-scene detection with annotated image output.
//
//   $ multiscale_street [--out scene.ppm] [--strategy feature|image]
//
// Renders an HD street scene with pedestrians at several distances, runs the
// multi-scale detector with the chosen pyramid strategy, compares against
// ground truth (IoU matching), and writes an annotated PPM: white boxes =
// ground truth, colored boxes = detections (per scale), with scores drawn in.
#include <cstdio>
#include <vector>

#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/scene.hpp"
#include "src/detect/scanner.hpp"
#include "src/hog/descriptor.hpp"
#include "src/hog/visualize.hpp"
#include "src/hwsim/timing.hpp"
#include "src/imgproc/convert.hpp"
#include "src/imgproc/draw.hpp"
#include "src/obs/report.hpp"
#include "src/tile/engine.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("multiscale_street", "annotated multi-scale scene detection");
  cli.add_string("out", "street_detections.ppm", "annotated output image");
  cli.add_string("heatmap", "", "optional base-scale score-map PGM");
  cli.add_string("glyphs", "", "optional HOG oriented-stick visualization PGM");
  cli.add_string("strategy", "feature",
                 "pyramid strategy: feature (paper), image (baseline), or "
                 "hybrid (Dollar [4])");
  cli.add_int("seed", 99, "scene random seed");
  cli.add_double("threshold", -0.1, "detection threshold");
  cli.add_int("width", 960, "frame width px (multiple of the 8-px HOG cell)");
  cli.add_int("height", 536, "frame height px (multiple of the 8-px HOG cell)");
  cli.add_int("tiles", 0,
              "run detection through an NxN tile grid (pdet::tile) instead of "
              "the whole-frame engine; 0 = untiled");
  cli.add_int("threads", 1,
              "pyramid-level lanes (untiled) or tile lanes (--tiles > 0)");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);

  // Train once on the synthetic protocol.
  core::PedestrianDetector detector;
  detector.train(dataset::make_window_set(5150, 300, 600));

  auto& ms = detector.mutable_config().multiscale;
  ms.scales = {1.0, 1.4, 2.0};
  ms.scan.threshold = static_cast<float>(cli.get_double("threshold"));
  detector.mutable_config().threads = cli.get_int("threads");
  const std::string strategy = cli.get_string("strategy");
  if (strategy == "image") {
    ms.strategy = detect::PyramidStrategy::kImage;
  } else if (strategy == "feature") {
    ms.strategy = detect::PyramidStrategy::kFeature;
  } else if (strategy == "hybrid") {
    ms.strategy = detect::PyramidStrategy::kHybrid;
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategy.c_str());
    return 1;
  }

  // Scene with pedestrians spanning the scale range.
  const int width = cli.get_int("width");
  const int height = cli.get_int("height");
  if (width <= 0 || height <= 0 || width % 8 != 0 || height % 8 != 0) {
    std::fprintf(stderr,
                 "--width/--height must be positive multiples of the 8-px HOG "
                 "cell (got %dx%d)\n",
                 width, height);
    return 1;
  }
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  dataset::SceneOptions sopts;
  sopts.width = width;
  sopts.height = height;  // cell-aligned (detection rejects non-multiples of 8)
  // The focal length stays fixed when the frame grows: a larger --width/
  // --height is a wider field of view at the same angular resolution, so the
  // pedestrians' pixel sizes — and which ladder scales cover them — are the
  // same at every resolution. (Scaling the focal with the frame would push
  // the near pedestrian to scale ~8 at UHD, far beyond the ladder.)
  sopts.camera.focal_px = 1000.0;
  sopts.pedestrian_distances_m = {16.5, 12.0, 8.5};
  const dataset::Scene scene = dataset::render_scene(rng, sopts);

  // Either one whole-frame pass or a tiled pass over an NxN grid; both end in
  // the same detection list, so the matching/annotation below is shared.
  std::vector<detect::Detection> detections;
  const int tiles = cli.get_int("tiles");
  if (tiles > 0) {
    tile::TileEngineOptions topts;
    topts.plan.tiles_x = tiles;
    topts.plan.tiles_y = tiles;
    topts.threads = cli.get_int("threads");
    tile::TileEngine engine(topts);
    const tile::TiledResult& tr = engine.process(
        scene.image, detector.config().hog, detector.model(), ms);
    detections = tr.detections;
    std::printf("strategy=%s tiles=%dx%d windows=%lld raw=%zu kept=%zu "
                "(halo %d px, merge %s to untiled, %d tile lane%s)\n",
                strategy.c_str(), engine.plan().tiles_x(),
                engine.plan().tiles_y(), tr.windows_evaluated, tr.raw.size(),
                tr.detections.size(), engine.plan().halo_trail_x_px(),
                engine.plan().exact() ? "identical" : "approximate",
                cli.get_int("threads"), cli.get_int("threads") == 1 ? "" : "s");
  } else {
    const detect::MultiscaleResult result = detector.detect(scene.image);
    detections = result.detections;
    std::printf("strategy=%s levels=%d windows=%lld raw=%zu kept=%zu "
                "(engine workspace %.1f KiB, %d thread%s)\n",
                strategy.c_str(), result.levels, result.windows_evaluated,
                result.raw.size(), result.detections.size(),
                static_cast<double>(detector.engine_stats().alloc_bytes) /
                    1024.0,
                cli.get_int("threads"), cli.get_int("threads") == 1 ? "" : "s");
  }

  // Match against truth.
  int hits = 0;
  for (const auto& t : scene.truth) {
    detect::Detection truth;
    truth.x = t.x;
    truth.y = t.y;
    truth.width = t.width;
    truth.height = t.height;
    const detect::Detection* best = nullptr;
    double best_iou = 0.0;
    for (const auto& d : detections) {
      const double v = detect::iou(d, truth);
      if (v > best_iou) {
        best_iou = v;
        best = &d;
      }
    }
    if (best != nullptr && best_iou >= 0.35) {
      ++hits;
      std::printf("  truth @%.0fm matched: IoU %.2f score %+.2f scale %.1f\n",
                  t.distance_m, best_iou, static_cast<double>(best->score),
                  best->scale);
    } else {
      std::printf("  truth @%.0fm MISSED (best IoU %.2f)\n", t.distance_m,
                  best_iou);
    }
  }
  std::printf("matched %d / %zu pedestrians\n", hits, scene.truth.size());

  // Annotate and write.
  imgproc::RgbImage canvas = imgproc::to_rgb(imgproc::to_u8(scene.image));
  for (const auto& t : scene.truth) {
    imgproc::draw_rect(canvas, t.x, t.y, t.width, t.height, {255, 255, 255});
  }
  for (const auto& d : detections) {
    const imgproc::Rgb color =
        d.scale == 1.0 ? imgproc::Rgb{0, 255, 0}
                       : (d.scale < 2.0 ? imgproc::Rgb{255, 200, 0}
                                        : imgproc::Rgb{255, 60, 60});
    imgproc::draw_rect(canvas, d.x, d.y, d.width, d.height, color, 2);
    imgproc::draw_text(canvas, d.x + 3, d.y + 3,
                       util::format("%.1f", static_cast<double>(d.score)),
                       color);
  }
  // Optional response-surface heatmap of the base scale.
  const std::string heatmap_path = cli.get_string("heatmap");
  if (!heatmap_path.empty()) {
    const hog::CellGrid cells =
        hog::compute_cell_grid(scene.image, detector.config().hog);
    const hog::BlockGrid blocks =
        hog::normalize_cells(cells, detector.config().hog);
    const imgproc::ImageF map =
        detect::score_map(blocks, detector.config().hog, detector.model());
    const imgproc::ImageU8 vis = imgproc::to_u8(imgproc::normalize_range(map));
    const imgproc::ImageU8 big = imgproc::resize(
        vis, vis.width() * 8, vis.height() * 8, imgproc::Interp::kNearest);
    if (!imgproc::write_pgm(big, heatmap_path)) {
      std::fprintf(stderr, "cannot write %s\n", heatmap_path.c_str());
      return 1;
    }
    std::printf("score heatmap written to %s\n", heatmap_path.c_str());
  }

  // Optional HOG glyph rendering (what the feature pyramid scales).
  const std::string glyph_path = cli.get_string("glyphs");
  if (!glyph_path.empty()) {
    const hog::CellGrid cells =
        hog::compute_cell_grid(scene.image, detector.config().hog);
    const imgproc::ImageF glyphs = hog::render_hog_glyphs(cells);
    if (!imgproc::write_pgm(imgproc::to_u8(glyphs), glyph_path)) {
      std::fprintf(stderr, "cannot write %s\n", glyph_path.c_str());
      return 1;
    }
    std::printf("HOG glyphs written to %s\n", glyph_path.c_str());
  }

  const std::string out = cli.get_string("out");
  if (!imgproc::write_ppm(canvas, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("annotated frame written to %s (white=truth, green=scale1, "
              "orange=mid, red=scale2)\n",
              out.c_str());

  const hwsim::TimingModel timing(
      hwsim::timing_config_for_frame(sopts.width, sopts.height));
  hwsim::publish_timing_metrics(timing, ms.scales);
  if (!obs::report_from_cli(cli)) return 1;
  return 0;
}
