// Run the FPGA accelerator model end to end on a frame.
//
//   $ hw_accelerator_sim [--width 640 --height 480] [--vcd trace.vcd]
//
// Shows everything the hardware model provides: fixed-point multi-scale
// detection (what the RTL computes), the cycle-level pipeline run (when it
// computes it: frame latency, fps, NHOGMem occupancy), the resource report
// (paper Table 2), and optionally a VCD trace of the pipeline's occupancy
// signals for a small frame, viewable in GTKWave.
#include <cstdio>

#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/scene.hpp"
#include "src/hwsim/accelerator.hpp"
#include "src/imgproc/convert.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("hw_accelerator_sim", "cycle-level accelerator demo");
  cli.add_int("width", 640, "frame width");
  cli.add_int("height", 480, "frame height");
  cli.add_double("threshold", -0.1, "detection threshold");
  cli.add_string("vcd", "", "write a GTKWave-viewable trace of a small frame");
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);

  // Train the model the accelerator will run (offline step in the paper).
  core::PedestrianDetector trainer;
  trainer.train(dataset::make_window_set(777, 250, 500));

  hwsim::AcceleratorConfig config;
  config.threshold = static_cast<float>(cli.get_double("threshold"));
  const hwsim::Accelerator accelerator(config, trainer.model());

  // A frame with a near (scale ~2) and a far (scale ~1) pedestrian.
  util::Rng rng(31);
  dataset::SceneOptions sopts;
  sopts.width = cli.get_int("width");
  sopts.height = cli.get_int("height");
  sopts.pedestrian_distances_m = {16.5, 8.5};
  const dataset::Scene scene = dataset::render_scene(rng, sopts);
  const imgproc::ImageU8 frame = imgproc::to_u8(scene.image);

  std::printf("processing %dx%d frame through the accelerator model...\n",
              frame.width(), frame.height());
  const hwsim::FrameResult result = accelerator.process_frame(frame);

  std::printf("\n--- fixed-point detection results ---\n");
  std::printf("%zu raw responses, %zu after NMS:\n", result.raw.size(),
              result.detections.size());
  for (const auto& d : result.detections) {
    std::printf("  box (%4d, %4d) %3dx%3d  score %+.2f  scale %.1f\n", d.x,
                d.y, d.width, d.height, static_cast<double>(d.score), d.scale);
  }
  std::printf("ground truth: ");
  for (const auto& t : scene.truth) {
    std::printf("(%d, %d) %dx%d @%.0fm  ", t.x, t.y, t.width, t.height,
                t.distance_m);
  }
  std::printf("\n");

  std::printf("\n--- cycle-level timing (125 MHz clock) ---\n");
  const auto& timing = result.timing;
  std::printf("total cycles        : %llu\n",
              static_cast<unsigned long long>(timing.total_cycles));
  std::printf("frame time          : %.3f ms  (%.1f fps)\n", timing.frame_ms,
              timing.fps);
  std::printf("windows classified  : %llu (native)",
              static_cast<unsigned long long>(timing.windows_s0));
  for (const auto w : timing.windows_extra) {
    std::printf(" + %llu (scaled)", static_cast<unsigned long long>(w));
  }
  std::printf("\nNHOGMem occupancy   : %d of %d rows (paper ring: 18)\n",
              timing.nhog_max_occupancy, timing.nhog_capacity);
  std::printf("gradient utilization: %.1f%%   classifier: %.1f%%\n",
              100 * timing.utilization_gradient,
              100 * timing.utilization_classifier);

  const auto model = accelerator.timing(1920, 1080);
  std::printf("\nHDTV projection     : classifier %llu cycles (%.2f ms), "
              "%.2f fps sustained\n",
              static_cast<unsigned long long>(model.classifier_frame_cycles()),
              model.classifier_frame_ms(), model.max_fps());

  std::printf("\n--- resource report (paper Table 2 config) ---\n%s",
              accelerator.resources(1920, 1080).to_table().c_str());

  // Optional VCD trace: re-run a small frame with waveform probes on the
  // pipeline's occupancy signals (view with GTKWave).
  const std::string vcd_path = cli.get_string("vcd");
  if (!vcd_path.empty()) {
    hwsim::PipelineConfig pc;
    pc.frame_width = 128;
    pc.frame_height = 192;
    pc.extra_scales = {2.0};
    if (!hwsim::trace_frame_to_vcd(pc, vcd_path)) {
      std::fprintf(stderr, "cannot write %s\n", vcd_path.c_str());
      return 1;
    }
    std::printf("\nVCD trace of a 128x192 frame written to %s\n",
                vcd_path.c_str());
  }
  return 0;
}
