// Multi-class detection: pedestrians AND vehicles from one feature pyramid.
//
//   $ multi_object [--out multi.ppm]
//
// Demonstrates the paper's multi-object claim (Section 1): two SVM
// "classifier instances" — a 64x128 pedestrian model and a 64x64 vehicle
// model — scan the same HOG feature pyramid, the software equivalent of two
// MACBAR arrays sharing one NHOGMem. Renders a street scene with one of
// each, detects both, and writes an annotated PPM.
#include <cmath>
#include <cstdio>

#include "src/core/multiclass.hpp"
#include "src/dataset/builder.hpp"
#include "src/dataset/scene.hpp"
#include "src/imgproc/convert.hpp"
#include "src/imgproc/draw.hpp"
#include "src/svm/train_dcd.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("multi_object", "pedestrian + vehicle from one pyramid");
  cli.add_string("out", "multi_object.ppm", "annotated output image");
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);

  // Train the two class models (offline stage).
  hog::HogParams ped_params;  // 64x128
  hog::HogParams veh_params;
  veh_params.window_width = 64;
  veh_params.window_height = 64;

  std::printf("training pedestrian model (64x128)...\n");
  const svm::LinearModel ped_model = svm::train_dcd(
      dataset::to_svm_dataset(dataset::make_window_set(801, 250, 500), ped_params),
      {.C = 0.01});
  std::printf("training vehicle model (64x64)...\n");
  const svm::LinearModel veh_model = svm::train_dcd(
      dataset::to_svm_dataset(dataset::make_vehicle_window_set(802, 250, 500),
                              veh_params),
      {.C = 0.01});

  core::MultiClassDetector detector;
  detector.add_class("pedestrian", ped_params, ped_model, -0.1f);
  detector.add_class("vehicle", veh_params, veh_model, 0.1f);

  // Scene: one pedestrian (truth from the generator) plus one hand-placed
  // vehicle at a known location/size.
  util::Rng rng(77);
  dataset::SceneOptions sopts;
  sopts.width = 640;
  sopts.height = 480;
  sopts.pedestrian_distances_m = {16.5};
  dataset::Scene scene = dataset::render_scene(rng, sopts);
  const double veh_cx = 480;
  const double veh_ground = 400;
  const double veh_w = 110;  // ~ 64x64 window at scale ~2
  dataset::draw_vehicle_into(scene.image, rng, veh_cx, veh_ground, veh_w, 0.85f);

  core::MulticlassOptions opts;
  opts.scales = {1.0, 1.26, 1.59, 2.0};
  const auto detections = detector.detect(scene.image, opts);

  std::printf("\n%zu detections:\n", detections.size());
  imgproc::RgbImage canvas = imgproc::to_rgb(imgproc::to_u8(scene.image));
  bool saw_ped = false;
  bool saw_veh = false;
  for (const auto& d : detections) {
    std::printf("  %-10s (%4d, %4d) %3dx%3d  score %+.2f  scale %.2f\n",
                d.class_name.c_str(), d.box.x, d.box.y, d.box.width,
                d.box.height, static_cast<double>(d.box.score), d.box.scale);
    const imgproc::Rgb color = d.class_index == 0 ? imgproc::Rgb{0, 255, 0}
                                                  : imgproc::Rgb{80, 160, 255};
    imgproc::draw_rect(canvas, d.box.x, d.box.y, d.box.width, d.box.height,
                       color, 2);
    imgproc::draw_text(canvas, d.box.x + 3, d.box.y + 3,
                       d.class_name.substr(0, 3), color);
    if (d.class_index == 0) saw_ped = true;
    // Vehicle counts only if it lands near the planted one.
    if (d.class_index == 1 && std::abs(d.box.x + d.box.width / 2 - veh_cx) < 40) {
      saw_veh = true;
    }
  }
  const std::string out = cli.get_string("out");
  if (!imgproc::write_ppm(canvas, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nannotated frame written to %s (green=pedestrian, blue=vehicle)\n",
              out.c_str());
  std::printf("pedestrian found: %s   vehicle found: %s\n",
              saw_ped ? "yes" : "NO", saw_veh ? "yes" : "NO");
  return saw_ped && saw_veh ? 0 : 1;
}
