// Driver-assistance planning: from vehicle speed to detector requirements.
//
//   $ das_planner [--speed 70] [--focal 3500]
//
// Walks the paper's Section 1 analysis for a concrete vehicle speed: stopping
// distance, the detection range that leaves the driver enough margin, the
// pedestrian pixel sizes across that range under the chosen camera, and
// which detector scales (HOG feature pyramid levels) cover it — then checks
// the accelerator's frame rate against the per-frame travel distance.
#include <cstdio>
#include <vector>

#include "src/core/das.hpp"
#include "src/hwsim/timing.hpp"
#include "src/util/cli.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pdet;
  using namespace pdet::core;
  util::Cli cli("das_planner", "speed -> detector requirement analysis");
  cli.add_double("speed", 70.0, "vehicle speed km/h");
  cli.add_double("focal", 4000.0, "camera focal length in pixels");
  cli.add_double("prt", 1.5, "perception-brake reaction time s");
  cli.add_double("decel", 6.5, "braking deceleration m/s^2");
  if (!cli.parse(argc, argv)) return 1;

  const double speed = cli.get_double("speed");
  das::StoppingParams stopping;
  stopping.reaction_time_s = cli.get_double("prt");
  stopping.deceleration_mps2 = cli.get_double("decel");

  const double reaction = das::reaction_distance_m(speed, stopping);
  const double braking = das::braking_distance_m(speed, stopping);
  const double total = reaction + braking;
  std::printf("vehicle at %.0f km/h (PRT %.1f s, decel %.1f m/s^2):\n", speed,
              stopping.reaction_time_s, stopping.deceleration_mps2);
  std::printf("  reaction distance : %6.2f m\n", reaction);
  std::printf("  braking distance  : %6.2f m\n", braking);
  std::printf("  total stopping    : %6.2f m\n", total);
  const double required_range = total * 1.1;  // 10% safety margin
  std::printf("  required detection range (+10%% margin): %.1f m\n\n",
              required_range);

  dataset::SceneCamera camera;
  camera.focal_px = cli.get_double("focal");
  util::Table table({"distance m", "person px", "window px", "needed scale"});
  std::vector<double> needed;
  std::vector<double> distances;
  for (double d = 10.0; d < required_range; d += 10.0) distances.push_back(d);
  distances.push_back(required_range);  // the band edge itself must be covered
  for (const double d : distances) {
    const double person = camera.person_px(d);
    const double scale = das::required_scale(camera, d);
    needed.push_back(scale);
    table.add_row({util::to_fixed(d, 0), util::to_fixed(person, 1),
                   util::to_fixed(person / 0.8, 1), util::to_fixed(scale, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Which pyramid levels cover the band (each level tolerates ~0.8-1.0 fill,
  // i.e. a ~1.25x range; step levels by 1.25 from the smallest need).
  const double min_scale = *std::min_element(needed.begin(), needed.end());
  const double max_scale = *std::max_element(needed.begin(), needed.end());
  std::vector<double> levels;
  for (double s = std::max(1.0, min_scale); s < max_scale * 1.25; s *= 1.25) {
    levels.push_back(s);
  }
  std::printf("\nsuggested feature-pyramid levels (1.25x steps): ");
  for (const double s : levels) std::printf("%.2f ", s);
  const das::CoverageBand band = das::coverage_band(camera, levels);
  std::printf("\ncovered band: %.1f m .. %.1f m\n", band.near_m, band.far_m);
  if (band.far_m >= required_range * 0.999) {
    std::printf("=> covers the %.1f m requirement\n", required_range);
  } else {
    std::printf("=> INSUFFICIENT for %.1f m; increase focal length or add "
                "smaller scales\n",
                required_range);
  }

  const hwsim::TimingModel timing;
  std::printf(
      "\nframe-rate check: at %.0f km/h the car travels %.2f m per frame at "
      "%.1f fps (HDTV accelerator)\n",
      speed, speed / 3.6 / timing.max_fps(), timing.max_fps());
  return 0;
}
