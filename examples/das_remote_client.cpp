// Remote camera node: stream synthetic frames to a das_server --listen
// instance and print the in-order detections it returns.
//
//   terminal 1:  $ das_server --listen 7788 --workers 2
//   terminal 2:  $ das_remote_client --port 7788 [--frames 16]
//                                    [--interval-ms 0] [--stream 0]
//
// This is the other half of the deployment picture in PAPERS.md (a detector
// node serving camera feeds over a link): the client renders a
// deterministic synthetic camera feed (dataset::MultiStreamSource — the
// same scenes the in-process demos use), submits each luminance frame over
// the wire protocol, and reads back results, verifying the in-order
// delivery contract as it goes. If the server restarts mid-run, the client
// reconnects with bounded exponential backoff and keeps streaming — watch
// the "reconnects" line in the final summary.
//
// Telemetry (protocol v3): --timelines prints each frame's reconstructed
// client -> engine -> client journey (server hop offsets grafted onto the
// client clock); --prometheus dumps the server's metrics registry in
// Prometheus text exposition after the run; --watch N skips streaming and
// polls the telemetry plane every N seconds instead — a lightweight live
// dashboard for a serving node.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/dataset/multistream.hpp"
#include "src/net/client.hpp"
#include "src/obs/timeline.hpp"
#include "src/runtime/server.hpp"
#include "src/score/backend.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_stop_signal(int) { g_stop = 1; }

const char* status_name(pdet::runtime::FrameStatus status) {
  switch (status) {
    case pdet::runtime::FrameStatus::kOk: return "ok";
    case pdet::runtime::FrameStatus::kDegraded: return "degraded";
    case pdet::runtime::FrameStatus::kDroppedQueue: return "drop:queue";
    case pdet::runtime::FrameStatus::kDroppedDeadline: return "drop:deadline";
    case pdet::runtime::FrameStatus::kError: return "error";
    case pdet::runtime::FrameStatus::kDegradedInput: return "degraded:input";
  }
  return "?";
}

const char* camera_name(std::uint8_t state) {
  switch (state) {
    case 0: return "healthy";
    case 1: return "suspect";
    case 2: return "quarantined";
    default: return "?";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("das_remote_client",
                "stream synthetic camera frames to a remote detector");
  cli.add_string("host", "127.0.0.1", "server address");
  cli.add_int("port", 7788, "server port");
  cli.add_int("frames", 16, "frames to stream");
  cli.add_int("stream", 0, "synthetic camera id (content seed)");
  cli.add_double("interval-ms", 0.0, "frame pacing (0 = flat out)");
  cli.add_int("width", 256, "frame width");
  cli.add_int("height", 192, "frame height");
  cli.add_flag("timelines",
               "print each frame's end-to-end timeline (wire trace grafted "
               "onto the client clock)");
  cli.add_flag("prometheus",
               "dump the server's Prometheus metrics text after the run");
  cli.add_int("watch", 0,
              "poll server telemetry every N seconds instead of streaming "
              "(0 = off)");
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);

  struct sigaction sa {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  dataset::MultiStreamOptions mopts;
  mopts.scene.width = cli.get_int("width");
  mopts.scene.height = cli.get_int("height");
  mopts.scene.camera.focal_px = 520.0;
  mopts.min_pedestrians = 0;
  mopts.max_pedestrians = 2;
  const dataset::MultiStreamSource source(2026, mopts);

  net::ClientOptions copts;
  copts.host = cli.get_string("host");
  copts.port = static_cast<std::uint16_t>(cli.get_int("port"));
  copts.name = "das_remote_client";
  net::Client client(copts);
  if (!client.connect()) {
    std::fprintf(stderr, "connect failed: %s\n", client.last_error().c_str());
    return 1;
  }
  const net::wire::HelloAck& info = client.server_info();
  std::printf("connected to %s (model dim %u crc %08x, stream slot %u)\n",
              info.server_name.c_str(), info.model_dim, info.model_crc,
              info.stream_id);

  // Watch mode: no frames, just the telemetry plane on a poll interval.
  const int watch_s = cli.get_int("watch");
  if (watch_s > 0) {
    net::wire::TelemetryReport t;
    net::wire::StatsReport sr;
    while (g_stop == 0) {
      if (!client.query_telemetry(t, 2000.0)) {
        std::fprintf(stderr, "telemetry query failed: %s\n",
                     client.last_error().c_str());
        return 1;
      }
      std::printf(
          "up %8.1fs  health %-8s  timelines %llu (window %u)  "
          "admit %.2f/%.2f  queue %.2f/%.2f  engine %.1f/%.1f  "
          "total %.1f/%.1f ms p50/p99\n",
          t.uptime_seconds,
          runtime::to_string(
              static_cast<runtime::HealthState>(t.health_state)),
          static_cast<unsigned long long>(t.timeline_frames),
          t.timeline_window, static_cast<double>(t.admit.p50_ms),
          static_cast<double>(t.admit.p99_ms),
          static_cast<double>(t.queue.p50_ms),
          static_cast<double>(t.queue.p99_ms),
          static_cast<double>(t.engine.p50_ms),
          static_cast<double>(t.engine.p99_ms),
          static_cast<double>(t.total.p50_ms),
          static_cast<double>(t.total.p99_ms));
      // Frame-quality / camera-health dashboard row (wire v5 guard block);
      // all-zero on a server running without --guard.
      if (client.query_stats(sr, 2000.0)) {
        std::printf(
            "  guard: unusable %llu  soft %llu  cams suspect/quarantined "
            "%u/%u  quarantines/recoveries %llu/%llu\n",
            static_cast<unsigned long long>(sr.guard_unusable),
            static_cast<unsigned long long>(sr.guard_soft),
            sr.cameras_suspect, sr.cameras_quarantined,
            static_cast<unsigned long long>(sr.camera_quarantines),
            static_cast<unsigned long long>(sr.camera_recoveries));
      }
      if (cli.get_flag("prometheus")) {
        std::fputs(t.prometheus.c_str(), stdout);
      }
      for (int tick = 0; tick < watch_s * 10 && g_stop == 0; ++tick) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    client.disconnect();
    return 0;
  }

  const bool show_timelines = cli.get_flag("timelines");
  const auto print_result = [&](const net::wire::Result& result) {
    std::printf("#%-3llu %-13s rung %d  %2zu det  total %6.1f ms",
                static_cast<unsigned long long>(result.tag),
                status_name(result.status), result.degrade_level,
                result.detections.size(),
                static_cast<double>(result.total_ms));
    if (result.input_quality != 0 || result.camera_state != 0) {
      std::printf("  [reasons %#x cam %s]",
                  static_cast<unsigned>(result.quality_reasons),
                  camera_name(result.camera_state));
    }
    std::printf("\n");
    obs::FrameTimeline t;
    if (show_timelines && client.last_timeline(t)) {
      std::printf("     %s\n", obs::to_line(t).c_str());
    }
  };

  const int frames = cli.get_int("frames");
  const int stream = cli.get_int("stream");
  const double interval_ms = cli.get_double("interval-ms");
  net::wire::Result result;
  long long shown = 0;
  for (int f = 0; f < frames && g_stop == 0; ++f) {
    const util::Timer pace;
    if (!client.submit(source.frame(stream, f).image)) {
      std::fprintf(stderr, "submit failed: %s\n", client.last_error().c_str());
      return 1;
    }
    // Read whatever has arrived; stay roughly one frame behind the feed.
    while (client.next_result(result, interval_ms > 0.0 ? 1.0 : 0.0)) {
      print_result(result);
      ++shown;
    }
    if (interval_ms > 0.0 && pace.milliseconds() < interval_ms) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          interval_ms - pace.milliseconds()));
    }
  }
  // Drain the tail: every submitted frame owes exactly one result.
  while (shown < client.submitted_on_connection() &&
         client.next_result(result, 5000.0)) {
    print_result(result);
    ++shown;
  }

  net::wire::StatsReport report;
  const bool have_stats = client.query_stats(report, 2000.0);
  std::printf("\n");
  util::Table table({"metric", "value"});
  table.add_row({"frames submitted",
                 std::to_string(client.submitted_on_connection())});
  table.add_row({"results received", std::to_string(client.results_received())});
  table.add_row({"in order", client.in_order() ? "yes" : "NO"});
  table.add_row({"results missed (shed)",
                 std::to_string(client.results_missed())});
  table.add_row({"reconnects", std::to_string(client.reconnects())});
  table.add_row({"protocol errors", std::to_string(client.protocol_errors())});
  if (have_stats) {
    table.add_row({"server fps", util::to_fixed(report.aggregate_fps, 1)});
    table.add_row({"server frames rx / results tx",
                   std::to_string(report.net_frames_received) + " / " +
                       std::to_string(report.net_results_sent)});
    table.add_row({"server sheds (queue/deadline/slow-reader)",
                   std::to_string(report.dropped_queue) + " / " +
                       std::to_string(report.dropped_deadline) + " / " +
                       std::to_string(report.net_results_dropped)});
    table.add_row({"server faults (worker/stall/poison)",
                   std::to_string(report.worker_faults) + " / " +
                       std::to_string(report.worker_stalls) + " / " +
                       std::to_string(report.poison_frames)});
    table.add_row(
        {"server health",
         runtime::to_string(
             static_cast<runtime::HealthState>(report.health_state))});
    table.add_row(
        {"scoring backend",
         std::string(score::to_string(
             static_cast<score::BackendKind>(report.score_backend)))});
    table.add_row({"score batches (mean fill)",
                   std::to_string(report.score_batches) + " (" +
                       util::to_fixed(report.score_fill, 1) + ")"});
    table.add_row({"server guard (unusable/soft)",
                   std::to_string(report.guard_unusable) + " / " +
                       std::to_string(report.guard_soft)});
    table.add_row({"server cameras (suspect/quarantined)",
                   std::to_string(report.cameras_suspect) + " / " +
                       std::to_string(report.cameras_quarantined)});
  }
  net::wire::TelemetryReport telemetry;
  const bool have_telemetry = client.query_telemetry(telemetry, 2000.0);
  if (have_telemetry) {
    table.add_row({"server uptime s",
                   util::to_fixed(telemetry.uptime_seconds, 1)});
    table.add_row(
        {"server timelines (window)",
         std::to_string(telemetry.timeline_frames) + " (" +
             std::to_string(telemetry.timeline_window) + ")"});
    table.add_row(
        {"server engine ms p50/p99",
         util::to_fixed(static_cast<double>(telemetry.engine.p50_ms), 2) +
             " / " +
             util::to_fixed(static_cast<double>(telemetry.engine.p99_ms), 2)});
    table.add_row(
        {"server total ms p50/p99",
         util::to_fixed(static_cast<double>(telemetry.total.p50_ms), 2) +
             " / " +
             util::to_fixed(static_cast<double>(telemetry.total.p99_ms), 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (have_telemetry && cli.get_flag("prometheus")) {
    std::printf("\n");
    std::fputs(telemetry.prometheus.c_str(), stdout);
  }
  client.disconnect();
  return client.in_order() && client.protocol_errors() == 0 ? 0 : 1;
}
