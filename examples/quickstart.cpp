// Quickstart: train a pedestrian detector, save/load the model, run it.
//
//   $ quickstart [--train-pos 300] [--model /tmp/pedestrian.model]
//
// Demonstrates the minimal public-API flow:
//   1. synthesize labelled 64x128 training windows (INRIA-protocol stand-in),
//   2. train the linear SVM through the PedestrianDetector facade,
//   3. persist and reload the model,
//   4. detect pedestrians in a frame at two scales via the HOG feature
//      pyramid (the paper's method) and print the detections.
#include <cstdio>

#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/scene.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("quickstart", "train + detect in a few lines of API");
  cli.add_int("train-pos", 300, "positive training windows");
  cli.add_int("train-neg", 600, "negative training windows");
  cli.add_string("model", "", "optional path to save/reload the model");
  cli.add_double("threshold", -0.25, "detection threshold");
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);

  // 1. Data.
  const dataset::WindowSet train = dataset::make_window_set(
      /*seed=*/2024, cli.get_int("train-pos"), cli.get_int("train-neg"));
  std::printf("training set: %zu positives, %zu negatives\n",
              train.positives(), train.negatives());

  // 2. Train. DetectorConfig defaults are the paper's configuration:
  // 64x128 window, 9 bins, L2-Hys, cell-group descriptor, 2-scale feature
  // pyramid.
  core::PedestrianDetector detector;
  const svm::TrainReport report = detector.train(train);
  std::printf("trained: %d epochs, objective %.4f, converged=%s\n",
              report.epochs, report.objective,
              report.converged ? "yes" : "no");

  // 3. Persist + reload (optional).
  const std::string model_path = cli.get_string("model");
  if (!model_path.empty()) {
    if (!detector.save_model(model_path)) {
      std::fprintf(stderr, "cannot write %s\n", model_path.c_str());
      return 1;
    }
    core::PedestrianDetector reloaded;
    if (!reloaded.load_model(model_path)) {
      std::fprintf(stderr, "cannot reload %s\n", model_path.c_str());
      return 1;
    }
    std::printf("model round-tripped through %s\n", model_path.c_str());
  }

  // 4. Detect in a synthetic street frame with two pedestrians.
  util::Rng rng(7);
  dataset::SceneOptions sopts;
  sopts.width = 640;
  sopts.height = 480;
  sopts.pedestrian_distances_m = {16.5, 8.5};  // near scale 1 and scale 2
  const dataset::Scene scene = dataset::render_scene(rng, sopts);

  detector.mutable_config().multiscale.scan.threshold =
      static_cast<float>(cli.get_double("threshold"));
  const detect::MultiscaleResult result = detector.detect(scene.image);
  std::printf("\n%lld windows evaluated over %d pyramid levels\n",
              result.windows_evaluated, result.levels);
  std::printf("%zu detections after NMS:\n", result.detections.size());
  for (const auto& d : result.detections) {
    std::printf("  box (%4d, %4d) %3dx%3d  score %+.2f  scale %.1f\n", d.x,
                d.y, d.width, d.height, static_cast<double>(d.score), d.scale);
  }
  std::printf("\nground truth:\n");
  for (const auto& t : scene.truth) {
    std::printf("  box (%4d, %4d) %3dx%3d  at %.0f m\n", t.x, t.y, t.width,
                t.height, t.distance_m);
  }
  return 0;
}
