// Multi-camera DAS serving demo: N synthetic streams through the runtime,
// or a remote TCP detection service over the same engine pool.
//
//   $ das_server [--streams 3] [--frames 8] [--workers 2] [--queue 8]
//                [--interval-ms 0] [--deadline-ms 0] [--policy drop-oldest]
//   $ das_server --listen 7788 [--max-clients 8] [--workers 2] ...
//   $ das_server --listen 7788 --telemetry --flight-dump /tmp/pdet-flight
//
// A driver-assistance platform rarely has one camera: front, corners and
// mirror-replacement feeds all want the same pedestrian detector. This demo
// stands up a pdet::runtime::DetectionServer over a pool of warm detection
// engines, feeds it N deterministic synthetic camera streams
// (dataset::MultiStreamSource), and prints every in-order delivery plus the
// server's aggregate accounting — throughput, latency percentiles, and how
// the backpressure/degradation machinery behaved. Run with a small --queue
// and --interval-ms 0 to watch load-shedding engage instead of the queue
// growing without bound.
//
// With --listen <port> the same engine pool is exposed over TCP instead
// (pdet::net::DetectionService, wire protocol in src/net/wire.hpp); point
// das_remote_client at it from another terminal or machine. Either mode
// shuts down gracefully on Ctrl-C / SIGTERM: queues drain, in-flight frames
// deliver, and the final stats report prints before exit.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/multistream.hpp"
#include "src/fault/injector.hpp"
#include "src/guard/sensor.hpp"
#include "src/net/service.hpp"
#include "src/obs/report.hpp"
#include "src/runtime/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace {

// Async-signal-safe stop flag: handlers may only set it; the main/producer
// loops poll it and run the normal drain/stop/report path.
volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

void install_signal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("das_server", "serve N camera streams from one engine pool");
  cli.add_int("streams", 3, "camera streams");
  cli.add_int("frames", 8, "frames per stream");
  cli.add_int("workers", 2, "detection workers (one warm engine each)");
  cli.add_int("queue", 8, "frame queue capacity");
  cli.add_double("interval-ms", 0.0, "per-stream frame interval (0 = flat out)");
  cli.add_double("deadline-ms", 0.0, "per-frame latency deadline (0 = none)");
  cli.add_string("policy", "drop-oldest",
                 "full-queue policy: block | drop-oldest | drop-newest");
  cli.add_string("backend", "scalar",
                 "scoring backend: scalar | batch | hwsim (MACBAR offload "
                 "model, one shared simulated device)");
  cli.add_int("listen", -1,
              "serve remote clients on this TCP port (0 = ephemeral port, "
              "printed on stdout; omit for local demo mode)");
  cli.add_int("max-clients", 8, "remote mode: concurrent client connections");
  cli.add_int("chaos-seed", 0,
              "arm seeded fault injection across io/runtime (0 = off)");
  cli.add_flag("fault-list",
               "print every registered fault-injection site and exit");
  cli.add_flag("guard",
               "enable the input-integrity gate: per-frame quality verdicts, "
               "camera-health quarantine, tracker coasting on unusable input");
  cli.add_flag("telemetry",
               "enable the live telemetry plane: metrics registry on, "
               "TelemetryQuery answered with Prometheus text");
  cli.add_string("flight-dump", "",
                 "flight-recorder dump path prefix (written on poison frame, "
                 "worker quarantine, or health leaving healthy)");
  cli.add_int("timeline-depth", 64,
              "frame timelines retained per stream (0 disables)");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  // --telemetry turns the metrics registry on even without --metrics: a
  // remote TelemetryQuery renders whatever the registry holds.
  if (cli.get_flag("telemetry")) obs::set_metrics_enabled(true);
  if (cli.get_flag("fault-list")) {
    // Introspection: the static site registry plus whatever the armed plan
    // has touched so far (nothing yet at startup — the table is the point).
    std::printf("%-24s %s\n", "site", "what it does when armed");
    for (const fault::SiteDoc& site : fault::registered_sites()) {
      std::printf("%-24s %s\n", site.name, site.what);
    }
    return 0;
  }
  install_signal_handlers();

  // Chaos mode: a deterministic fault schedule across every injection point
  // plus the runtime's watchdog/self-healing machinery. The same seed
  // reproduces the same fault sequence (per-point check counts permitting).
  const int chaos_seed = cli.get_int("chaos-seed");
  const bool guard_on = cli.get_flag("guard");
  if (chaos_seed != 0) {
    fault::Plan plan;
    plan.seed = static_cast<std::uint64_t>(chaos_seed);
    plan.with("net.send.short", 0.02)
        .with("net.send.eintr", 0.02)
        .with("net.recv.short", 0.02)
        .with("net.recv.eintr", 0.02)
        .with("runtime.engine.fault", 0.05)
        .with("runtime.worker.stall", 0.01, /*param=*/120);
    if (guard_on) {
      // With the gate on, also degrade the sensor itself (demo mode runs
      // submitted frames through guard::SensorSimulator below).
      plan.with("sensor.frame.freeze", 0.05)
          .with("sensor.frame.tear", 0.03)
          .with("sensor.rows.dead", 0.03)
          .with("sensor.frame.blackout", 0.02);
    }
    fault::Injector::instance().arm(plan);
    std::printf("chaos: armed fault plan, seed %d\n", chaos_seed);
  }

  runtime::BackpressurePolicy policy = runtime::BackpressurePolicy::kDropOldest;
  const std::string policy_name = cli.get_string("policy");
  if (policy_name == "block") {
    policy = runtime::BackpressurePolicy::kBlock;
  } else if (policy_name == "drop-newest") {
    policy = runtime::BackpressurePolicy::kDropNewest;
  } else if (policy_name != "drop-oldest") {
    std::fprintf(stderr, "unknown --policy %s\n", policy_name.c_str());
    return 1;
  }

  score::BackendKind backend_kind = score::BackendKind::kAuto;
  if (!score::parse_backend(cli.get_string("backend"), backend_kind)) {
    std::fprintf(stderr, "unknown --backend %s (want scalar|batch|hwsim)\n",
                 cli.get_string("backend").c_str());
    return 1;
  }

  // Train once; every worker engine serves the same model (the paper's
  // accelerator stores one parameter set shared by all windows).
  std::printf("training detector...\n");
  core::PedestrianDetector detector;
  detector.train(dataset::make_window_set(616, 250, 500));

  if (cli.get_int("listen") >= 0) {
    // Remote mode: expose the engine pool over TCP and serve until a stop
    // signal arrives; stop() drains in-flight frames and flushes results.
    // --listen 0 binds an ephemeral port (printed below), which is what
    // scripted harnesses and the fleet tooling use to avoid port races.
    net::ServiceOptions sopts;
    sopts.port = static_cast<std::uint16_t>(cli.get_int("listen"));
    sopts.host = "0.0.0.0";
    sopts.max_clients = cli.get_int("max-clients");
    sopts.runtime.workers = cli.get_int("workers");
    sopts.runtime.queue_capacity =
        static_cast<std::size_t>(cli.get_int("queue"));
    sopts.runtime.backpressure = policy;
    sopts.runtime.scheduler.deadline_ms = cli.get_double("deadline-ms");
    if (chaos_seed != 0) sopts.runtime.stall_timeout_ms = 60.0;
    sopts.runtime.timeline_depth =
        static_cast<std::size_t>(cli.get_int("timeline-depth"));
    sopts.runtime.flight_dump_path = cli.get_string("flight-dump");
    sopts.runtime.hog = detector.config().hog;
    sopts.runtime.multiscale = detector.config().multiscale;
    sopts.runtime.multiscale.scales = {1.0, 1.26, 1.59, 2.0};
    sopts.runtime.backend = backend_kind;
    sopts.runtime.guard.enabled = guard_on;
    net::DetectionService service(detector.model(), sopts);
    std::string error;
    if (!service.start(&error)) {
      std::fprintf(stderr, "cannot listen: %s\n", error.c_str());
      return 1;
    }
    // The bound port (the ephemeral one when --listen 0) goes to stdout and
    // is flushed immediately so a parent process can scrape it.
    std::printf("serving on port %u (Ctrl-C to stop)...\n",
                static_cast<unsigned>(service.port()));
    std::fflush(stdout);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("\nstopping: draining in-flight frames...\n");
    service.stop();

    const net::ServiceStats stats = service.stats();
    util::Table table({"metric", "value"});
    table.add_row({"connections acc/closed/refused",
                   std::to_string(stats.connections_accepted) + " / " +
                       std::to_string(stats.connections_closed) + " / " +
                       std::to_string(stats.connections_refused)});
    table.add_row({"frames received", std::to_string(stats.frames_received)});
    table.add_row({"results sent / dropped",
                   std::to_string(stats.results_sent) + " / " +
                       std::to_string(stats.results_dropped)});
    table.add_row({"decode errors / frames rejected",
                   std::to_string(stats.decode_errors) + " / " +
                       std::to_string(stats.frames_rejected)});
    table.add_row({"bytes in / out", std::to_string(stats.bytes_in) + " / " +
                                         std::to_string(stats.bytes_out)});
    table.add_row({"worker faults / stalls / replaced",
                   std::to_string(stats.runtime.worker_faults) + " / " +
                       std::to_string(stats.runtime.worker_stalls) + " / " +
                       std::to_string(stats.runtime.workers_replaced)});
    table.add_row({"frame errors / poison",
                   std::to_string(stats.runtime.errors) + " / " +
                       std::to_string(stats.runtime.poison_frames)});
    table.add_row({"health", runtime::to_string(stats.runtime.health)});
    if (guard_on) {
      table.add_row({"guard unusable / soft",
                     std::to_string(stats.runtime.guard_unusable) + " / " +
                         std::to_string(stats.runtime.guard_soft)});
      table.add_row(
          {"camera quarantines / recoveries",
           std::to_string(stats.runtime.camera_quarantines) + " / " +
               std::to_string(stats.runtime.camera_recoveries)});
    }
    table.add_row({"flight-recorder triggers",
                   std::to_string(stats.runtime.flight_triggers)});
    table.add_row({"aggregate fps",
                   util::to_fixed(stats.runtime.aggregate_fps, 1)});
    table.add_row({"request ms p50/p99",
                   util::to_fixed(stats.request_ms.p50, 1) + " / " +
                       util::to_fixed(stats.request_ms.p99, 1)});
    std::fputs(table.to_string().c_str(), stdout);
    service.publish_metrics();
    return obs::report_from_cli(cli) ? 0 : 1;
  }

  const int streams = cli.get_int("streams");
  const int frames = cli.get_int("frames");

  // Deterministic multi-camera content: stream k's frame i is the same scene
  // regardless of how many streams run or which order frames are rendered.
  dataset::MultiStreamOptions mopts;
  mopts.scene.width = 256;
  mopts.scene.height = 192;
  mopts.scene.camera.focal_px = 520.0;
  mopts.min_pedestrians = 0;
  mopts.max_pedestrians = 2;
  const dataset::MultiStreamSource source(2026, mopts);
  std::printf("rendering %d streams x %d frames...\n", streams, frames);
  std::vector<std::vector<imgproc::ImageF>> feed(
      static_cast<std::size_t>(streams));
  for (int s = 0; s < streams; ++s) {
    for (int f = 0; f < frames; ++f) {
      feed[static_cast<std::size_t>(s)].push_back(source.frame(s, f).image);
    }
  }

  runtime::ServerOptions opts;
  opts.workers = cli.get_int("workers");
  opts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  opts.backpressure = policy;
  opts.scheduler.deadline_ms = cli.get_double("deadline-ms");
  if (chaos_seed != 0) opts.stall_timeout_ms = 60.0;
  opts.timeline_depth = static_cast<std::size_t>(cli.get_int("timeline-depth"));
  opts.flight_dump_path = cli.get_string("flight-dump");
  opts.hog = detector.config().hog;
  opts.multiscale = detector.config().multiscale;
  opts.multiscale.scales = {1.0, 1.26, 1.59, 2.0};
  opts.backend = backend_kind;
  opts.guard.enabled = guard_on;

  runtime::DetectionServer server(detector.model(), opts);
  std::mutex print_mutex;
  for (int s = 0; s < streams; ++s) {
    server.add_stream("cam" + std::to_string(s),
                      [&print_mutex](const runtime::StreamResult& r) {
                        const char* status = "ok";
                        switch (r.status) {
                          case runtime::FrameStatus::kOk: break;
                          case runtime::FrameStatus::kDegraded:
                            status = "degraded"; break;
                          case runtime::FrameStatus::kDroppedQueue:
                            status = "drop:queue"; break;
                          case runtime::FrameStatus::kDroppedDeadline:
                            status = "drop:deadline"; break;
                          case runtime::FrameStatus::kError:
                            status = "error"; break;
                          case runtime::FrameStatus::kDegradedInput:
                            status = "degraded:input"; break;
                        }
                        std::lock_guard<std::mutex> lock(print_mutex);
                        std::printf(
                            "cam%-2d #%-3llu %-13s rung %d  %2zu det  "
                            "wait %6.1f ms  total %6.1f ms\n",
                            r.stream,
                            static_cast<unsigned long long>(r.sequence), status,
                            r.degrade_level, r.detections.size(),
                            r.queue_wait_ms, r.total_ms);
                      });
  }

  server.start();
  const auto interval = std::chrono::duration<double, std::milli>(
      cli.get_double("interval-ms"));
  // With --guard + --chaos-seed, frames pass through the deterministic
  // sensor-fault model on their way in, so the gate has something to catch.
  // Streams are disjoint SensorSimulator slots, so producers stay parallel.
  const bool sensor_chaos = guard_on && chaos_seed != 0;
  guard::SensorSimulator sensor(
      static_cast<std::uint64_t>(chaos_seed != 0 ? chaos_seed : 1), streams);
  std::vector<std::thread> producers;
  for (int s = 0; s < streams; ++s) {
    producers.emplace_back([&, s] {
      auto next = std::chrono::steady_clock::now();
      imgproc::ImageF scratch;
      for (int f = 0; f < frames && g_stop == 0; ++f) {
        const imgproc::ImageF& clean =
            feed[static_cast<std::size_t>(s)][static_cast<std::size_t>(f)];
        const imgproc::ImageF* submit = &clean;
        if (sensor_chaos) {
          scratch = clean;
          sensor.apply(s, static_cast<std::uint64_t>(f), scratch);
          submit = &scratch;
        }
        (void)server.submit(s, *submit);
        if (interval.count() > 0.0) {
          next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              interval);
          std::this_thread::sleep_until(next);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  server.drain();
  server.stop();

  const runtime::RuntimeStats stats = server.stats();
  std::printf("\n");
  util::Table table({"metric", "value"});
  table.add_row({"streams x frames", std::to_string(streams) + " x " +
                                         std::to_string(frames)});
  table.add_row({"workers / queue / policy",
                 std::to_string(opts.workers) + " / " +
                     std::to_string(opts.queue_capacity) + " / " + policy_name});
  table.add_row({"submitted", std::to_string(stats.submitted)});
  table.add_row({"ok / degraded", std::to_string(stats.ok) + " / " +
                                      std::to_string(stats.degraded)});
  table.add_row({"dropped queue / deadline",
                 std::to_string(stats.dropped_queue) + " / " +
                     std::to_string(stats.dropped_deadline)});
  table.add_row({"errors / poison", std::to_string(stats.errors) + " / " +
                                        std::to_string(stats.poison_frames)});
  table.add_row({"worker faults / stalls / replaced",
                 std::to_string(stats.worker_faults) + " / " +
                     std::to_string(stats.worker_stalls) + " / " +
                     std::to_string(stats.workers_replaced)});
  table.add_row({"health", runtime::to_string(stats.health)});
  if (guard_on) {
    table.add_row({"guard unusable / soft",
                   std::to_string(stats.guard_unusable) + " / " +
                       std::to_string(stats.guard_soft)});
    table.add_row({"camera quarantines / recoveries",
                   std::to_string(stats.camera_quarantines) + " / " +
                       std::to_string(stats.camera_recoveries)});
    table.add_row({"cameras suspect / quarantined",
                   std::to_string(stats.cameras_suspect) + " / " +
                       std::to_string(stats.cameras_quarantined)});
  }
  table.add_row({"flight-recorder triggers",
                 std::to_string(stats.flight_triggers)});
  table.add_row({"aggregate fps", util::to_fixed(stats.aggregate_fps, 1)});
  table.add_row({"queue wait ms p50/p99",
                 util::to_fixed(stats.queue_wait_ms.p50, 1) + " / " +
                     util::to_fixed(stats.queue_wait_ms.p99, 1)});
  table.add_row({"service ms p50/p99",
                 util::to_fixed(stats.service_ms.p50, 1) + " / " +
                     util::to_fixed(stats.service_ms.p99, 1)});
  table.add_row({"total ms p50/p99",
                 util::to_fixed(stats.total_latency_ms.p50, 1) + " / " +
                     util::to_fixed(stats.total_latency_ms.p99, 1)});
  table.add_row({"engine frames / workspace KiB",
                 std::to_string(stats.engine_frames) + " / " +
                     util::to_fixed(
                         static_cast<double>(stats.engine_alloc_bytes) / 1024.0,
                         1)});
  std::fputs(table.to_string().c_str(), stdout);

  server.publish_metrics();
  if (!obs::report_from_cli(cli)) return 1;
  // Every submitted frame must have been delivered exactly once — including
  // frames that faulted and were delivered as errors under chaos, and frames
  // the integrity gate short-circuited as unusable input.
  const long long delivered = stats.completed + stats.dropped_queue +
                              stats.dropped_deadline + stats.errors +
                              stats.guard_unusable;
  return delivered == stats.submitted ? 0 : 1;
}
