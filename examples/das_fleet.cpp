// Sharded fleet serving demo: K in-process detection shards behind a
// consistent-hash ShardRouter, driven by a deterministic traffic journal.
//
//   $ das_fleet [--shards 4] [--streams 8] [--frames 32] [--fps 25]
//               [--speed 10] [--workers 1] [--queue 8]
//   $ das_fleet --save-journal /tmp/soak.pdj      # capture, then replay it
//   $ das_fleet --load-journal /tmp/soak.pdj      # replay a saved capture
//   $ das_fleet --chaos-seed 31337                # seeded mid-replay shard kill
//
// One das_server process serves a handful of cameras; a vehicle platform or
// a test bench replaying fleet traffic wants many. This demo stands up K
// detection shards (net::DetectionService, all serving the same trained
// model), puts a fleet::ShardRouter in front of them, and replays a
// journaled multi-camera workload through the router at --speed× the
// captured rate. Cameras are consistent-hashed onto shards by client name;
// every stream's results come back exactly once, in order, even when
// --chaos-seed kills a shard session mid-replay and the router re-shards
// around the loss and drains streams back after the session redials.
//
// The journal (fleet::Journal) pins the whole workload — base seed, scene
// options, per-frame seeds and arrival times — so two runs are comparable
// measurements of the serving stack. --save-journal / --load-journal move
// captures between runs or machines.
//
// After the replay the demo asks the *router* for fleet-wide stats through
// an ordinary net::Client (the router answers StatsQuery by fanning out to
// every shard and merging), prints the router's own accounting plus the
// per-shard rows, and exits 0 only if the replay was exactly-once and —
// under chaos — every shard session recovered.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/multistream.hpp"
#include "src/fault/injector.hpp"
#include "src/fleet/journal.hpp"
#include "src/fleet/replayer.hpp"
#include "src/fleet/router.hpp"
#include "src/net/client.hpp"
#include "src/net/service.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace {

bool wait_backends_up(const pdet::fleet::ShardRouter& router, int want,
                      double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (router.backends_up() < want) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("das_fleet",
                "replay journaled camera traffic through a sharded fleet");
  cli.add_int("shards", 4, "detection shards behind the router");
  cli.add_int("streams", 8, "camera streams in the journal");
  cli.add_int("frames", 32, "frames per stream in the journal");
  cli.add_double("fps", 25.0, "per-camera capture rate recorded in the journal");
  cli.add_double("speed", 10.0, "replay timeline scale (1 = as captured)");
  cli.add_int("workers", 1, "detection workers per shard");
  cli.add_int("queue", 8, "frame queue capacity per shard");
  cli.add_int("vnodes", 64, "ring points per shard (placement smoothness)");
  cli.add_int("seed", 2026, "journal base seed (pins every frame's pixels)");
  cli.add_string("save-journal", "", "write the captured journal here");
  cli.add_string("load-journal", "",
                 "replay this journal instead of capturing one");
  cli.add_int("chaos-seed", 0,
              "arm a seeded mid-replay shard-session kill "
              "(fleet.backend.drop; 0 = off)");
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);

  const int shards = cli.get_int("shards");
  const int streams = cli.get_int("streams");
  const int frames = cli.get_int("frames");
  if (shards < 1 || streams < 1 || frames < 1) {
    std::fprintf(stderr, "--shards/--streams/--frames must be >= 1\n");
    return 1;
  }

  // The journal: load a saved capture, or synthesize one. Small frames keep
  // the demo snappy; the scene renderer needs at least 64x128.
  fleet::Journal journal;
  if (!cli.get_string("load-journal").empty()) {
    std::string error;
    if (!fleet::load_journal(cli.get_string("load-journal"), journal, &error)) {
      std::fprintf(stderr, "cannot load journal: %s\n", error.c_str());
      return 1;
    }
    std::printf("loaded journal: %d streams, %zu records, %.2f s of traffic\n",
                journal.stream_count(), journal.records.size(),
                journal.duration_seconds());
  } else {
    dataset::MultiStreamOptions mopts;
    mopts.scene.width = 160;
    mopts.scene.height = 128;
    mopts.scene.camera.focal_px = 300.0;
    mopts.min_pedestrians = 0;
    mopts.max_pedestrians = 2;
    journal = fleet::capture_journal(
        static_cast<std::uint64_t>(cli.get_int("seed")), mopts, streams,
        frames, cli.get_double("fps"));
    std::printf("captured journal: %d streams x %d frames @ %.0f fps "
                "(%.2f s of traffic)\n",
                streams, frames, cli.get_double("fps"),
                journal.duration_seconds());
  }
  if (!cli.get_string("save-journal").empty()) {
    std::string error;
    if (!fleet::save_journal(journal, cli.get_string("save-journal"),
                             &error)) {
      std::fprintf(stderr, "cannot save journal: %s\n", error.c_str());
      return 1;
    }
    std::printf("journal saved to %s\n",
                cli.get_string("save-journal").c_str());
  }

  // Train once; every shard serves the same model (a fleet answers for one
  // fingerprint, which is what lets the router advertise any shard's ack).
  std::printf("training detector...\n");
  core::PedestrianDetector detector;
  detector.train(dataset::make_window_set(616, 250, 500));

  net::ServiceOptions sopts;
  sopts.port = 0;  // ephemeral: the router learns each port below
  sopts.runtime.workers = cli.get_int("workers");
  sopts.runtime.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  sopts.runtime.backpressure = runtime::BackpressurePolicy::kBlock;
  sopts.runtime.hog = detector.config().hog;
  sopts.runtime.multiscale = detector.config().multiscale;
  sopts.runtime.multiscale.scales = {1.0, 1.26, 1.59};

  std::printf("starting %d shards + router...\n", shards);
  std::vector<std::unique_ptr<net::DetectionService>> fleet;
  fleet::RouterOptions ropts;
  ropts.vnodes = cli.get_int("vnodes");
  ropts.max_clients = streams + 1;  // cameras + the stats probe below
  for (int i = 0; i < shards; ++i) {
    fleet.push_back(
        std::make_unique<net::DetectionService>(detector.model(), sopts));
    std::string error;
    if (!fleet.back()->start(&error)) {
      std::fprintf(stderr, "shard %d failed to start: %s\n", i, error.c_str());
      return 1;
    }
    ropts.backends.push_back(
        fleet::BackendEndpoint{"127.0.0.1", fleet.back()->port()});
  }
  fleet::ShardRouter router(ropts);
  std::string error;
  if (!router.start(&error)) {
    std::fprintf(stderr, "router failed to start: %s\n", error.c_str());
    return 1;
  }
  if (!wait_backends_up(router, shards, 10.0)) {
    std::fprintf(stderr, "shards never came up\n");
    return 1;
  }

  // Chaos: a seeded one-shot shard-session kill partway into the replay.
  // skip lets the handshakes and the first few frames through so the kill
  // lands mid-traffic; the router must re-shard, redial and drain streams
  // back without a duplicate or a reorder.
  const int chaos_seed = cli.get_int("chaos-seed");
  if (chaos_seed != 0) {
    fault::Plan plan;
    plan.seed = static_cast<std::uint64_t>(chaos_seed);
    plan.with("fleet.backend.drop", 1.0, /*param=*/0,
              /*skip=*/static_cast<long long>(journal.records.size() / 4),
              /*max_fires=*/1);
    fault::Injector::instance().arm(plan);
    std::printf("chaos: armed seeded shard kill, seed %d\n", chaos_seed);
  }

  std::printf("replaying at %.0fx through 127.0.0.1:%u...\n",
              cli.get_double("speed"), static_cast<unsigned>(router.port()));
  fleet::ReplayOptions replay;
  replay.port = router.port();
  replay.speed = cli.get_double("speed");
  const fleet::ReplayReport report = fleet::replay_journal(journal, replay);

  bool recovered = true;
  if (chaos_seed != 0) {
    fault::Injector::instance().disarm();
    recovered = wait_backends_up(router, shards, 10.0);
  }

  // Fleet-wide stats through the front door: an ordinary client asks the
  // router, the router fans out to every shard and merges the reports.
  net::ClientOptions copts;
  copts.port = router.port();
  copts.name = "fleet-probe";
  net::Client probe(copts);
  net::wire::StatsReport fleet_stats;
  const bool have_fleet_stats =
      probe.connect() && probe.query_stats(fleet_stats, 2000.0);

  std::printf("\nper-stream delivery:\n");
  util::Table streams_table(
      {"stream", "submitted", "received", "shed", "in-order"});
  for (const fleet::StreamReplay& s : report.streams) {
    streams_table.add_row({"cam" + std::to_string(s.stream),
                           std::to_string(s.submitted),
                           std::to_string(s.received),
                           std::to_string(s.missed),
                           s.in_order ? "yes" : "NO"});
  }
  std::fputs(streams_table.to_string().c_str(), stdout);

  const fleet::RouterStats rs = router.stats();
  std::printf("\nrouter:\n");
  util::Table rt({"metric", "value"});
  rt.add_row({"replay wall s / exactly-once",
              util::to_fixed(report.wall_seconds, 2) + " / " +
                  (report.exactly_once ? "yes" : "NO")});
  rt.add_row({"frames received / forwarded",
              std::to_string(rs.frames_received) + " / " +
                  std::to_string(rs.frames_forwarded)});
  rt.add_row({"shed no-backend / draining / backpressure",
              std::to_string(rs.frames_shed_no_backend) + " / " +
                  std::to_string(rs.frames_shed_draining) + " / " +
                  std::to_string(rs.frames_shed_backpressure)});
  rt.add_row({"results delivered / shed / duplicates suppressed",
              std::to_string(rs.results_delivered) + " / " +
                  std::to_string(rs.results_shed_backend +
                                 rs.results_shed_client) + " / " +
                  std::to_string(rs.duplicates_suppressed)});
  rt.add_row({"sessions lost / reshards / stream moves",
              std::to_string(rs.backend_sessions_lost) + " / " +
                  std::to_string(rs.reshards) + " / " +
                  std::to_string(rs.stream_moves)});
  rt.add_row({"backends up", std::to_string(rs.backends_up) + " / " +
                                 std::to_string(shards)});
  if (have_fleet_stats) {
    rt.add_row({"fleet completed / fps",
                std::to_string(fleet_stats.completed) + " / " +
                    util::to_fixed(fleet_stats.aggregate_fps, 1)});
    rt.add_row({"fleet health",
                runtime::to_string(
                    static_cast<runtime::HealthState>(
                        fleet_stats.health_state))});
  }
  std::fputs(rt.to_string().c_str(), stdout);

  std::printf("\nper-shard:\n");
  util::Table st({"shard", "up", "forwarded", "returned", "shed", "redials"});
  for (std::size_t i = 0; i < rs.shards.size(); ++i) {
    const fleet::ShardStats& s = rs.shards[i];
    st.add_row({std::to_string(i) + " (" + s.endpoint + ")",
                s.up ? "yes" : "NO", std::to_string(s.frames_forwarded),
                std::to_string(s.results_returned),
                std::to_string(s.shed_inflight),
                std::to_string(s.reconnects)});
  }
  std::fputs(st.to_string().c_str(), stdout);

  router.stop();
  for (auto& s : fleet) s->stop();

  if (!report.exactly_once) {
    std::fprintf(stderr, "FAIL: replay was not exactly-once in-order\n");
    return 1;
  }
  if (!recovered) {
    std::fprintf(stderr, "FAIL: a shard session never recovered\n");
    return 1;
  }
  return 0;
}
