// UHD tiled detection demo: ROI scheduling + temporal coherence at 3840x2160.
//
//   $ das_uhd [--frames 28] [--tile-threads 4] [--max-age 4] [--rung 2]
//
// The DAS argument for UHD: a pedestrian 90 m out renders ~130 px tall at
// f = 7000 px — detectable at UHD, invisible at VGA. A whole-frame pass over
// 8.3 Mpx cannot hold the frame budget, so the pipeline tiles the frame
// (pdet::tile), runs the warm per-tile engines in parallel, and after the
// first full pass lets the RoiScheduler spend the budget where it matters:
// tiles the tracker predicts the pedestrian will occupy run every frame,
// everything else is refreshed round-robin under a hard staleness bound,
// with skipped tiles serving cached detections (temporal coherence).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/bootstrap.hpp"
#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/scene.hpp"
#include "src/detect/tracker.hpp"
#include "src/obs/report.hpp"
#include "src/tile/engine.hpp"
#include "src/tile/roi.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("das_uhd", "tiled UHD detection with ROI scheduling");
  cli.add_int("frames", 28, "frames to simulate");
  cli.add_double("speed-kmh", 54.0, "closing speed km/h");
  cli.add_double("start", 90.0, "initial distance m (far band is the point)");
  cli.add_int("fps", 10, "simulated camera rate");
  cli.add_int("tile-threads", 4, "tile lanes in the tiled engine");
  cli.add_int("max-age", 4, "ROI staleness bound (frames)");
  cli.add_int("rung", 2,
              "deadline rung driving the tile budget: 0 = every tile, "
              "1 = half, 2 = forced tiles only");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);

  // Train with a small hard-negative pass (clutter at UHD is plentiful).
  core::PedestrianDetector detector;
  const dataset::WindowSet train = dataset::make_window_set(616, 250, 500);
  detector.train(train);
  core::BootstrapOptions bopts;
  bopts.negative_scenes = 4;
  bopts.max_hard_negatives = 250;
  core::bootstrap_hard_negatives(detector, train, bopts);

  auto& ms = detector.mutable_config().multiscale;
  ms.scales = {1.0, 1.26, 1.59, 2.0};  // 128..256 px pedestrians
  ms.scan.threshold = -0.15f;

  // UHD approach: the long focal length puts the 90..48 m band into the
  // detector's 128..256 px window range — the far-detection case that
  // motivates UHD in the first place.
  dataset::ApproachOptions aopts;
  aopts.scene.width = 3840;
  aopts.scene.height = 2160;
  aopts.scene.camera.focal_px = 7000.0;
  aopts.start_distance_m = cli.get_double("start");
  aopts.closing_speed_mps = cli.get_double("speed-kmh") / 3.6;
  aopts.fps = cli.get_int("fps");
  aopts.frames = cli.get_int("frames");
  aopts.min_distance_m = 45.0;
  const auto sequence = dataset::render_approach_sequence(4242, aopts);

  tile::TileEngineOptions topts;
  topts.threads = cli.get_int("tile-threads");
  tile::TileEngine engine(topts);
  tile::RoiOptions ropts;
  ropts.max_age = cli.get_int("max-age");
  tile::RoiScheduler roi(ropts);
  detect::Tracker tracker;

  std::printf("UHD approach: %zu frames at %d fps, %.0f -> %.0f m "
              "(pedestrian %0.f -> %.0f px)\n",
              sequence.size(), cli.get_int("fps"), aopts.start_distance_m,
              sequence.empty() ? 0.0 : sequence.back().truth.front().distance_m,
              aopts.scene.camera.person_px(aopts.start_distance_m),
              sequence.empty()
                  ? 0.0
                  : aopts.scene.camera.person_px(
                        sequence.back().truth.front().distance_m));

  util::Timer timer;
  std::vector<detect::Detection> predicted;
  std::vector<int> selection;
  int tracked_frames = 0;
  int ped_tile_fresh = 0;
  int ped_tile_checked = 0;
  int max_age_seen = 0;
  long long windows_total = 0;
  long long full_pass_windows = 0;

  std::printf("\nframe  dist(m)  tiles fresh/total  reused  max-age  dets  "
              "tracks  ped-tile\n");
  for (std::size_t f = 0; f < sequence.size(); ++f) {
    const auto& scene = sequence[f];
    const tile::TiledResult* res = nullptr;
    bool roi_frame = false;
    if (f == 0) {
      // Bootstrap: one full pass builds the plan, warms every tile engine,
      // and fills the detection caches the ROI frames lean on.
      res = &engine.process(scene.image, detector.config().hog,
                            detector.model(), ms);
      full_pass_windows = res->windows_evaluated;
    } else {
      roi_frame = true;
      tracker.predict_boxes(1, predicted);
      const int budget = tile::RoiScheduler::rung_budget(
          engine.plan().tile_count(), cli.get_int("rung"));
      roi.plan_frame(engine.plan(), engine.ages(), predicted, budget,
                     selection);
      res = &engine.process(scene.image, detector.config().hog,
                            detector.model(), ms, &selection);
    }
    tracker.update(res->detections);
    windows_total += res->windows_evaluated;
    max_age_seen = std::max(max_age_seen, res->max_age);

    // Which tile owns the pedestrian, and did it run fresh this frame?
    const auto& truth = scene.truth.front();
    const int cx = std::clamp(truth.x + truth.width / 2, 0,
                              engine.plan().frame_width() - 1);
    const int cy = std::clamp(truth.y + truth.height / 2, 0,
                              engine.plan().frame_height() - 1);
    const int ped_tile = engine.plan().owner_of(cx, cy);
    const bool ped_fresh =
        !roi_frame ||
        std::find(selection.begin(), selection.end(), ped_tile) !=
            selection.end();
    // Hot coverage starts once the tracker can predict (2 hits to confirm).
    if (f >= 2) {
      ++ped_tile_checked;
      if (ped_fresh) ++ped_tile_fresh;
    }

    bool tracked = false;
    detect::Detection truth_box;
    truth_box.x = truth.x;
    truth_box.y = truth.y;
    truth_box.width = truth.width;
    truth_box.height = truth.height;
    for (const auto& t : tracker.tracks()) {
      if (t.confirmed(2) && detect::iou(t.box, truth_box) > 0.2) {
        tracked = true;
        break;
      }
    }
    if (tracked) ++tracked_frames;

    std::printf("%5zu  %7.1f  %11d/%-5d  %6d  %7d  %4zu  %6zu  %d %s\n", f,
                truth.distance_m, res->tiles_detected, res->tiles_total,
                res->tiles_reused, res->max_age, res->detections.size(),
                tracker.tracks().size(), ped_tile,
                ped_fresh ? "fresh" : "CACHED");
  }

  const double elapsed = timer.seconds();
  const auto stats = engine.stats();
  std::printf("\n%zu frames in %.1f s (%.2f fps); windows evaluated %lld vs "
              "~%lld untiled-every-frame (%.0f%% saved by ROI)\n",
              sequence.size(), elapsed,
              static_cast<double>(sequence.size()) / elapsed, windows_total,
              full_pass_windows * static_cast<long long>(sequence.size()),
              100.0 * (1.0 - static_cast<double>(windows_total) /
                                 static_cast<double>(
                                     full_pass_windows *
                                     static_cast<long long>(sequence.size()))));
  std::printf("tiles: %lld fresh, %lld reused; worst staleness %d "
              "(bound %d); plan %dx%d %s, halo %d px\n",
              stats.tiles_detected, stats.tiles_reused, max_age_seen,
              ropts.max_age, engine.plan().tiles_x(), engine.plan().tiles_y(),
              engine.plan().exact() ? "exact" : "approximate",
              engine.plan().halo_trail_x_px());
  std::printf("tracked the pedestrian in %d / %zu frames; predicted tile "
              "fresh %d / %d ROI frames\n",
              tracked_frames, sequence.size(), ped_tile_fresh,
              ped_tile_checked);

  if (!obs::report_from_cli(cli)) return 1;
  const bool ok =
      max_age_seen <= ropts.max_age &&
      tracked_frames * 2 >= static_cast<int>(sequence.size()) &&
      ped_tile_fresh == ped_tile_checked;
  if (!ok) std::printf("\nFAIL: staleness, tracking, or hot coverage broke\n");
  return ok ? 0 : 1;
}
