// Approaching-pedestrian video: detection + tracking + time-to-collision.
//
//   $ das_video [--speed-kmh 54] [--start 40] [--frames 48]
//
// Simulates the DAS scenario the paper's introduction is about: the vehicle
// closes on a pedestrian, the detector (HOG feature pyramid, multi-scale)
// runs on every frame, a greedy-IoU tracker maintains the identity, and the
// track's height growth yields a time-to-collision estimate that is checked
// against the ground-truth closing kinematics and against the stopping
// distance the paper computes.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "src/core/bootstrap.hpp"
#include "src/core/das.hpp"
#include "src/core/pedestrian_detector.hpp"
#include "src/dataset/scene.hpp"
#include "src/detect/tracker.hpp"
#include "src/fault/injector.hpp"
#include "src/guard/gate.hpp"
#include "src/guard/sensor.hpp"
#include "src/hwsim/score_backend.hpp"
#include "src/hwsim/timing.hpp"
#include "src/obs/report.hpp"
#include "src/util/cli.hpp"
#include "src/util/logging.hpp"

int main(int argc, char** argv) {
  using namespace pdet;
  util::Cli cli("das_video", "detect+track an approaching pedestrian");
  cli.add_double("speed-kmh", 54.0, "closing speed km/h");
  cli.add_double("start", 28.0, "initial distance m");
  cli.add_int("frames", 48, "frames to simulate");
  cli.add_int("fps", 30, "simulated camera rate (lower than 60 to keep the demo fast)");
  cli.add_int("width", 512, "frame width px (multiple of the 8-px HOG cell)");
  cli.add_int("height", 384, "frame height px (multiple of the 8-px HOG cell)");
  cli.add_int("threads", 1, "pyramid-level lanes in the detection engine");
  cli.add_string("backend", "scalar",
                 "scoring backend: scalar | batch | hwsim (quantized MACBAR "
                 "offload model)");
  cli.add_int("sensor-chaos", 0,
              "degrade the camera feed with a seeded sensor-fault schedule "
              "(freeze/tear/blackout/dead rows); the integrity gate skips "
              "unusable frames and the tracker coasts (0 = off)");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  score::BackendKind backend = score::BackendKind::kScalar;
  if (!score::parse_backend(cli.get_string("backend"), backend)) {
    std::fprintf(stderr, "unknown --backend %s (want scalar|batch|hwsim)\n",
                 cli.get_string("backend").c_str());
    return 1;
  }
  util::set_default_log_level(util::LogLevel::kWarn);
  obs::configure_from_cli(cli);
  const int width = cli.get_int("width");
  const int height = cli.get_int("height");
  if (width <= 0 || height <= 0 || width % 8 != 0 || height % 8 != 0) {
    std::fprintf(stderr,
                 "--width/--height must be positive multiples of the 8-px HOG "
                 "cell (got %dx%d)\n",
                 width, height);
    return 1;
  }

  // Train (with a small hard-negative pass: full-frame scanning without it
  // produces distracting clutter tracks).
  core::PedestrianDetector detector;
  const dataset::WindowSet train = dataset::make_window_set(616, 250, 500);
  detector.train(train);
  core::BootstrapOptions bopts;
  bopts.negative_scenes = 4;
  bopts.max_hard_negatives = 250;
  const core::BootstrapReport breport =
      core::bootstrap_hard_negatives(detector, train, bopts);
  std::printf("bootstrap: %d hard negatives, FP/frame %.2f -> %.2f\n\n",
              breport.hard_negatives_mined,
              breport.initial_false_positive_rate,
              breport.final_false_positive_rate);

  // A dense scale ladder (12% steps) so the approaching person never falls
  // between levels — affordable precisely because the feature pyramid makes
  // extra levels nearly free (the paper's point; see bench_pipeline_speedup).
  auto& ms = detector.mutable_config().multiscale;
  ms.scales = {1.0, 1.12, 1.26, 1.41, 1.59, 1.78, 2.0, 2.24, 2.52, 2.83};
  ms.scan.threshold = -0.15f;
  detector.mutable_config().threads = cli.get_int("threads");
  // hwsim is a constructed device, not a bare enum: build it here and share
  // it with the detector's engine for the whole run.
  hwsim::HwsimScoreBackend hwsim_device;
  if (backend == score::BackendKind::kHwsim) {
    detector.mutable_config().scorer = &hwsim_device;
  } else {
    detector.mutable_config().backend = backend;
  }

  // Camera geometry sized so the whole approach stays inside detector
  // coverage: at f = 2000 px a pedestrian at 28 m is ~121 px (scale 1.2) and
  // at 12 m ~283 px (scale 2.8); the low hood-mounted camera keeps the feet
  // in frame at close range (see das_planner for the general analysis).
  dataset::ApproachOptions aopts;
  aopts.scene.width = width;
  aopts.scene.height = height;
  // The focal length stays fixed when the frame grows: a larger --width/
  // --height is a wider field of view at the same angular resolution, so the
  // pedestrian's pixel size at a given distance — and detection recall — is
  // identical at every resolution. (Scaling the focal instead pushes the
  // person to pyramid scales the ladder was not tuned for; das_uhd is the
  // long-lens UHD variant, with a ladder designed for its 7000 px focal.)
  aopts.scene.camera.focal_px = 2000.0;
  aopts.scene.camera.camera_height_m = 0.9;
  aopts.min_distance_m = 12.0;
  aopts.start_distance_m = cli.get_double("start");
  aopts.closing_speed_mps = cli.get_double("speed-kmh") / 3.6;
  aopts.fps = cli.get_int("fps");
  aopts.frames = cli.get_int("frames");
  // --sensor-chaos: degrade the rendered feed with a seeded fault schedule
  // and put the integrity gate in front of the detector. Unusable frames
  // skip the engine; the tracker coasts on predicted boxes instead.
  const int sensor_seed = cli.get_int("sensor-chaos");
  if (sensor_seed != 0) {
    fault::Plan plan;
    plan.seed = static_cast<std::uint64_t>(sensor_seed);
    plan.with("sensor.frame.freeze", 0.10)
        .with("sensor.frame.tear", 0.05)
        .with("sensor.frame.blackout", 0.05)
        .with("sensor.rows.dead", 0.05, /*param=*/10);
    fault::Injector::instance().arm(plan);
    std::printf("sensor-chaos: armed seeded sensor faults, seed %d\n",
                sensor_seed);
  }
  guard::SensorSimulator sensor(
      static_cast<std::uint64_t>(sensor_seed != 0 ? sensor_seed : 1), 1);
  guard::FrameGuard gate;

  auto sequence = dataset::render_approach_sequence(2718, aopts);
  std::printf("simulating %zu frames at %d fps, closing %.1f km/h from %.0f m\n",
              sequence.size(), cli.get_int("fps"), cli.get_double("speed-kmh"),
              aopts.start_distance_m);

  const double stop_m =
      core::das::total_stopping_distance_m(cli.get_double("speed-kmh"));
  std::printf("total stopping distance at this speed: %.1f m\n\n", stop_m);

  detect::Tracker tracker;
  std::vector<detect::Detection> coast_buf;
  bool braked = false;
  int tracked_frames = 0;
  int coasted = 0;
  std::printf("frame  dist(m)  tracks  main-track                TTC est (s)  truth (s)\n");
  for (std::size_t f = 0; f < sequence.size(); ++f) {
    PDET_TRACE_SCOPE("das/frame");
    auto& scene = sequence[f];
    if (sensor_seed != 0) {
      sensor.apply(0, static_cast<std::uint64_t>(f), scene.image);
    }
    // Gate the (possibly degraded) pixels. Unusable frames never reach the
    // detector: the tracker coasts on its own one-frame-ahead predictions,
    // which keeps identities and the TTC estimate alive across the gap.
    bool unusable = false;
    std::uint32_t gate_reasons = 0;
    if (sensor_seed != 0) {
      const guard::GuardVerdict& v = gate.inspect(scene.image);
      unusable = v.quality == guard::FrameQuality::kUnusable;
      gate_reasons = v.reasons;
    }
    if (unusable) {
      coast_buf.clear();
      tracker.predict_boxes(1, coast_buf);
      ++coasted;
    }
    const auto& tracks =
        unusable ? tracker.update(coast_buf)
                 : tracker.update(detector.detect(scene.image).detections);
    if (unusable) {
      std::printf("%5zu  gate: unusable input (%s) — tracker coasting\n", f,
                  guard::reasons_to_string(gate_reasons).c_str());
    }

    // Report the confirmed track best matching the truth.
    const auto& truth = scene.truth.front();
    detect::Detection truth_box;
    truth_box.x = truth.x;
    truth_box.y = truth.y;
    truth_box.width = truth.width;
    truth_box.height = truth.height;
    const detect::Track* main = nullptr;
    double best_iou = 0.2;
    for (const auto& t : tracks) {
      if (!t.confirmed(2)) continue;
      const double v = detect::iou(t.box, truth_box);
      if (v > best_iou) {
        best_iou = v;
        main = &t;
      }
    }

    // Truth for the estimator's quantity: time until the person's *box*
    // reaches 60% of the frame height (the imminent proxy), not time to
    // physical contact.
    const double limit_person_px = aopts.scene.height * 0.6 * 0.8;
    const double limit_distance =
        aopts.scene.camera.focal_px * aopts.scene.camera.person_height_m /
        limit_person_px;
    const double truth_ttc = std::max(
        0.0, (truth.distance_m - limit_distance) / aopts.closing_speed_mps);
    if (main != nullptr) {
      ++tracked_frames;
      // TTC: frames until the person's box height would fill ~60% of the
      // frame (an imminent-collision proxy), over the camera rate.
      const auto frames_left = detect::Tracker::frames_to_height(
          *main, static_cast<int>(aopts.scene.height * 0.6));
      std::printf("%5zu  %7.1f  %6zu  id %-3d IoU %.2f h=%3d g=%+.3f  ", f,
                  truth.distance_m, tracks.size(), main->id, best_iou,
                  main->box.height, main->height_growth_per_frame);
      if (frames_left.has_value()) {
        const double ttc = *frames_left / aopts.fps;
        std::printf("%11.1f  %9.1f\n", ttc, truth_ttc);
        if (!braked && ttc * aopts.closing_speed_mps < stop_m) {
          std::printf("       >>> BRAKE: predicted travel %.1f m until "
                      "collision-size < stopping %.1f m (at %.1f m actual)\n",
                      ttc * aopts.closing_speed_mps, stop_m, truth.distance_m);
          braked = true;
        }
      } else {
        std::printf("%11s  %9.1f\n", "-", truth_ttc);
      }
    } else {
      std::printf("%5zu  %7.1f  %6zu  (no confirmed track)%31.1f\n", f,
                  truth.distance_m, tracks.size(), truth_ttc);
    }
  }
  std::printf("\ntracked the pedestrian in %d / %zu frames\n", tracked_frames,
              sequence.size());
  if (sensor_seed != 0) {
    std::printf("sensor-chaos: gate ruled %d / %zu frames unusable; tracker "
                "coasted through them\n",
                coasted, sequence.size());
  }
  // The streaming loop above is exactly the engine's steady state: every
  // frame after the first should hit warm workspace buffers.
  const auto& estats = detector.engine_stats();
  std::printf("engine: %lld frames, %.1f KiB workspace, %lld grow events, "
              "%lld reuse hits (%d thread%s, %s backend)\n",
              estats.frames, static_cast<double>(estats.alloc_bytes) / 1024.0,
              estats.grow_events, estats.reuse_hits, cli.get_int("threads"),
              cli.get_int("threads") == 1 ? "" : "s",
              score::to_string(estats.backend));
  if (!braked) {
    std::printf("note: no brake decision fired — raise --frames or speed\n");
  }

  // Publish what the modeled accelerator would do with these frames, so the
  // hwsim.cycles.* gauges sit beside the measured host-time metrics.
  const hwsim::TimingModel timing(hwsim::timing_config_for_frame(
      static_cast<int>(aopts.scene.width), static_cast<int>(aopts.scene.height)));
  hwsim::publish_timing_metrics(timing, ms.scales);
  if (!obs::report_from_cli(cli)) return 1;
  return tracked_frames * 2 >= static_cast<int>(sequence.size()) ? 0 : 1;
}
